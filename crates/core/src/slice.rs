//! Slices of the STG-unfolding segment (the paper, §3.3): connected sets of
//! cuts between a min-cut and a set of max-cuts, used to represent the
//! on-set and off-set of a signal without enumerating the state graph.

use si_petri::BitSet;
use si_stg::{Polarity, SignalId, Stg};
use si_unfolding::{ConditionId, EventId, StgUnfolding};

/// A slice representing part of the on-set (or off-set) of one signal.
///
/// The slice is identified by its *entry* (an instance of `+a` for on-set
/// slices, `-a` for off-set slices, or the initial transition `⊥` when the
/// initial value already puts the signal in the set) and bounded by its
/// *exits* — the `next` instances of the opposite change. The member events
/// and conditions are everything that can fire / be marked strictly inside
/// those bounds.
#[derive(Debug, Clone)]
pub struct Slice {
    /// The signal whose on/off-set this slice belongs to.
    pub signal: SignalId,
    /// The stable value of the signal inside the slice (`true` for on-set
    /// slices).
    pub value: bool,
    /// The entry event: an instance of the signal, or `⊥`.
    pub entry: EventId,
    /// The bounding instances of the opposite change (`next(entry)`, or
    /// `first(signal)` for a `⊥` entry).
    pub exits: Vec<EventId>,
    /// Events that can fire inside the slice (excluding entry and exits).
    pub members: BitSet,
    /// Conditions that can be marked inside the slice.
    pub conditions: BitSet,
}

impl Slice {
    /// Builds the slice entered at `entry` for `signal`.
    ///
    /// `value` is the signal's stable value inside the slice; for a real
    /// entry it is the target value of the entry's polarity, for `⊥` it is
    /// the initial value.
    pub fn build(unf: &StgUnfolding, signal: SignalId, value: bool, entry: EventId) -> Slice {
        let exits = if entry.is_root() {
            unf.first_instances(signal)
        } else {
            unf.next_instances(entry)
        };
        let exit_set: BitSet = exits.iter().map(|e| e.index()).collect();

        // Members: events that are not exits, have no exit in their local
        // configuration, and are either concurrent with or causally after
        // the entry (every event qualifies on both counts for ⊥).
        let mut members = BitSet::new();
        for f in unf.events() {
            if f.is_root() || f == entry || exit_set.contains(f.index()) {
                continue;
            }
            if unf.causes(f).iter().any(|c| exit_set.contains(c)) {
                continue;
            }
            let related = if entry.is_root() {
                true
            } else {
                unf.precedes_or_equal(entry, f) || unf.events_co(entry, f)
            };
            if related {
                members.insert(f.index());
            }
        }

        // Conditions: the min-cut plus the postsets of entry and members.
        let mut conditions = BitSet::new();
        let min_cut: Vec<ConditionId> = if entry.is_root() {
            unf.min_stable_cut(EventId::ROOT).to_vec()
        } else {
            unf.min_excitation_cut(entry)
        };
        for b in min_cut {
            conditions.insert(b.index());
        }
        if !entry.is_root() {
            for &b in unf.postset(entry) {
                conditions.insert(b.index());
            }
        }
        for f in members.iter() {
            for &b in unf.postset(EventId(f as u32)) {
                conditions.insert(b.index());
            }
        }

        Slice {
            signal,
            value,
            entry,
            exits,
            members,
            conditions,
        }
    }

    /// The min-cut of the slice: `c_min_e(entry)` for a real entry, the
    /// initial cut for `⊥`.
    pub fn min_cut(&self, unf: &StgUnfolding) -> Vec<ConditionId> {
        if self.entry.is_root() {
            unf.min_stable_cut(EventId::ROOT).to_vec()
        } else {
            unf.min_excitation_cut(self.entry)
        }
    }

    /// Returns `true` if `e` is an exit of this slice.
    pub fn is_exit(&self, e: EventId) -> bool {
        self.exits.contains(&e)
    }

    /// Returns `true` if `e` is a member event of this slice.
    pub fn is_member(&self, e: EventId) -> bool {
        self.members.contains(e.index())
    }

    /// Returns `true` if condition `b` belongs to the slice.
    pub fn has_condition(&self, b: ConditionId) -> bool {
        self.conditions.contains(b.index())
    }

    /// The approximation set `P'_a`: conditions used to approximate the
    /// quiescent part of the slice. Tries the paper's compact choice first —
    /// a mutually non-concurrent "spine" — and falls back to *all*
    /// conditions sequential to the entry, which is always a sound
    /// (over-approximating) choice.
    pub fn approximation_set(&self, unf: &StgUnfolding) -> Vec<ConditionId> {
        let all = self.sequential_conditions(unf);
        if let Some(spine) = self.spine(unf, &all) {
            return spine;
        }
        all
    }

    /// All slice conditions causally at-or-after the entry. For a `⊥` entry
    /// every slice condition qualifies.
    pub fn sequential_conditions(&self, unf: &StgUnfolding) -> Vec<ConditionId> {
        self.conditions
            .iter()
            .map(|i| ConditionId(i as u32))
            .filter(|&b| {
                if self.entry.is_root() {
                    return true;
                }
                unf.event_precedes_condition(self.entry, b)
            })
            .collect()
    }

    /// Attempts to find the paper's mutually non-concurrent approximation
    /// set: a union of causal chains from the entry to each exit such that
    /// every chain condition is consumed (inside the slice) only by the next
    /// chain event — then every in-slice cut after the entry marks exactly
    /// one chain condition, so the chain's MR covers are a complete
    /// approximation. Returns `None` when the structure does not admit one.
    fn spine(&self, unf: &StgUnfolding, candidates: &[ConditionId]) -> Option<Vec<ConditionId>> {
        if self.exits.is_empty() {
            return None;
        }
        let mut spine: Vec<ConditionId> = Vec::new();
        for &exit in &self.exits {
            // Walk backwards from the exit towards the entry; at each step
            // `consumer` is the chain event that consumes the condition we
            // are about to select.
            let mut consumer = exit;
            loop {
                let current = *unf
                    .preset(consumer)
                    .iter()
                    .find(|&&b| candidates.contains(&b))?;
                // Inside the slice the condition may be consumed only by the
                // chain (side consumers would let a cut skip the chain).
                let stealable = unf
                    .consumers(current)
                    .iter()
                    .any(|&c| c != consumer && (self.is_member(c) || self.is_exit(c)));
                if stealable {
                    return None;
                }
                if !spine.contains(&current) {
                    spine.push(current);
                }
                let producer = unf.producer(current);
                if producer == self.entry || producer.is_root() {
                    break;
                }
                if !self.is_member(producer) {
                    return None;
                }
                consumer = producer;
            }
        }
        // Mutual non-concurrency: the paper's requirement on `P'_a`.
        for (i, &a) in spine.iter().enumerate() {
            for &b in &spine[i + 1..] {
                if unf.conditions_co(a, b) {
                    return None;
                }
            }
        }
        spine.sort();
        Some(spine)
    }

    /// A short description for diagnostics, e.g. `slice(+b@e3)`.
    pub fn describe(&self, stg: &Stg, unf: &StgUnfolding) -> String {
        let polarity = if self.value { "+" } else { "-" };
        format!(
            "slice({}{}@{})",
            polarity,
            stg.signal_name(self.signal),
            unf.event_name(stg, self.entry)
        )
    }
}

/// Builds all slices of the given side (`value = true` → on-set) for
/// `signal`: one per instance of the entering polarity, plus the `⊥` slice
/// when the initial value already equals `value`.
pub fn side_slices(unf: &StgUnfolding, signal: SignalId, value: bool) -> Vec<Slice> {
    let entering = if value {
        Polarity::Rise
    } else {
        Polarity::Fall
    };
    let mut slices = Vec::new();
    if unf.initial_code().get(signal) == value {
        slices.push(Slice::build(unf, signal, value, EventId::ROOT));
    }
    for e in unf.instances_of(signal) {
        if unf.label(e).map(|l| l.polarity) == Some(entering) {
            slices.push(Slice::build(unf, signal, value, e));
        }
    }
    slices
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::suite::{paper_fig1, paper_fig4ab};
    use si_unfolding::UnfoldingOptions;

    fn build(stg: &Stg) -> StgUnfolding {
        StgUnfolding::build(stg, &UnfoldingOptions::default()).expect("builds")
    }

    fn event_by_name(stg: &Stg, unf: &StgUnfolding, name: &str) -> EventId {
        unf.events()
            .find(|&e| {
                unf.transition(e)
                    .map(|t| stg.transition_label_string(t) == name)
                    .unwrap_or(false)
            })
            .unwrap_or_else(|| panic!("no event labelled {name}"))
    }

    #[test]
    fn fig1_on_slices_of_b_match_paper() {
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let slices = side_slices(&unf, sb, true);
        // Two +b instances, no ⊥ slice (b starts at 0).
        assert_eq!(slices.len(), 2);
        for s in &slices {
            assert!(!s.entry.is_root());
        }
        // The +b' slice is bounded by its next -b; the +b'' slice is
        // truncated by the -a cutoff (the paper: "the cut reached by such a
        // configuration bounds the slice").
        let mut exit_counts: Vec<usize> = slices.iter().map(|s| s.exits.len()).collect();
        exit_counts.sort();
        assert_eq!(exit_counts, vec![0, 1]);
    }

    #[test]
    fn fig1_off_slices_of_b() {
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let slices = side_slices(&unf, sb, false);
        // ⊥ slice (b starts at 0) plus the -b instance.
        assert_eq!(slices.len(), 2);
        assert!(slices.iter().any(|s| s.entry.is_root()));
    }

    #[test]
    fn fig4_on_slice_of_a_members() {
        let stg = paper_fig4ab();
        let unf = build(&stg);
        let sa = stg.signal_by_name("a").expect("a");
        let slices = side_slices(&unf, sa, true);
        assert_eq!(slices.len(), 1);
        let s = &slices[0];
        // Members: +b, +c, +d, +e, +f, +g (everything between +a and -a).
        assert_eq!(s.members.len(), 6);
        // -a is the single exit.
        assert_eq!(s.exits.len(), 1);
        let exit_label = unf.label(s.exits[0]).expect("labelled");
        assert_eq!(stg.signal_name(exit_label.signal), "a");
    }

    #[test]
    fn fig4_approximation_set_is_the_paper_spine_or_fallback() {
        let stg = paper_fig4ab();
        let unf = build(&stg);
        let sa = stg.signal_by_name("a").expect("a");
        let slices = side_slices(&unf, sa, true);
        let pa = slices[0].approximation_set(&unf);
        // Either the paper's compact chain {p4,p7,p10} (or another branch's
        // equivalent chain — the structure is symmetric) or the sound
        // fallback of all sequential conditions. In both cases every exit
        // preset must be represented.
        assert!(!pa.is_empty());
        let exit = slices[0].exits[0];
        let preset: Vec<ConditionId> = unf.preset(exit).to_vec();
        assert!(
            preset.iter().any(|b| pa.contains(b)),
            "P'_a must touch the exit preset"
        );
    }

    #[test]
    fn slice_min_cut_of_entry() {
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let slices = side_slices(&unf, sb, true);
        // One of the slices is entered at the +b instance consuming p4; its
        // min-cut is {p4}.
        let small = slices
            .iter()
            .find(|s| s.min_cut(&unf).len() == 1)
            .expect("the p4 slice");
        let b = small.min_cut(&unf)[0];
        assert_eq!(stg.net().place_name(unf.place(b)), "p4");
        let _ = event_by_name(&stg, &unf, "b+");
    }

    #[test]
    fn members_exclude_exit_successors() {
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        for s in side_slices(&unf, sb, true) {
            for f in s.members.iter() {
                let f = EventId(f as u32);
                // No member may causally follow an exit.
                for &x in &s.exits {
                    assert!(!unf.precedes_or_equal(x, f));
                }
            }
        }
    }
}
