//! Netlist export: render a synthesised implementation as an `.eqn`-style
//! equation file or as structural Verilog (one continuous assignment per
//! atomic complex gate, with the sequential feedback the architecture
//! allows folded into the expression).

use std::fmt::Write as _;

use si_cubes::{Cover, Literal};
use si_stg::{SignalKind, Stg};

use crate::arch::ExcitationImplementation;
use crate::synth::UnfoldingSynthesis;

/// Renders the implementation as an `.eqn`-style equation list (the format
/// SIS consumes), one `name = sum-of-products;` line per gate.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_synthesis::{synthesize_from_unfolding, to_eqn, SynthesisOptions};
///
/// # fn main() -> Result<(), si_synthesis::SynthesisError> {
/// let stg = paper_fig1();
/// let netlist = synthesize_from_unfolding(&stg, &SynthesisOptions::default())?;
/// let eqn = to_eqn(&stg, &netlist);
/// assert!(eqn.contains("b = a + c;"));
/// # Ok(())
/// # }
/// ```
pub fn to_eqn(stg: &Stg, synthesis: &UnfoldingSynthesis) -> String {
    let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
    let mut out = String::new();
    let _ = writeln!(out, "# {} — atomic complex gate per signal", stg.name());
    let inputs: Vec<&str> = stg
        .signals()
        .filter(|&s| stg.signal_kind(s) == SignalKind::Input)
        .map(|s| stg.signal_name(s))
        .collect();
    let _ = writeln!(out, "INORDER = {};", inputs.join(" "));
    let outputs: Vec<&str> = synthesis
        .gates
        .iter()
        .map(|g| stg.signal_name(g.signal))
        .collect();
    let _ = writeln!(out, "OUTORDER = {};", outputs.join(" "));
    for gate in &synthesis.gates {
        let _ = writeln!(
            out,
            "{} = {};",
            stg.signal_name(gate.signal),
            gate.gate.to_expression_string(&names)
        );
    }
    out
}

/// Renders a cover as a Verilog boolean expression over the given names.
fn verilog_expr(cover: &Cover, names: &[&str]) -> String {
    if cover.is_empty() {
        return "1'b0".to_owned();
    }
    cover
        .cubes()
        .iter()
        .map(|cube| {
            if cube.is_full() {
                return "1'b1".to_owned();
            }
            let product: Vec<String> = cube
                .literals()
                .map(|(v, lit)| match lit {
                    Literal::One => names[v].to_owned(),
                    Literal::Zero => format!("~{}", names[v]),
                    Literal::DontCare => unreachable!("literals() never yields DontCare"),
                })
                .collect();
            match product.as_slice() {
                [single] => single.clone(),
                _ => format!("({})", product.join(" & ")),
            }
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Renders the implementation as a structural Verilog module: inputs are
/// the STG's input signals, outputs the implemented signals, each driven by
/// one continuous assignment (the atomic complex gate, feedback included).
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_synthesis::{synthesize_from_unfolding, to_verilog, SynthesisOptions};
///
/// # fn main() -> Result<(), si_synthesis::SynthesisError> {
/// let stg = paper_fig1();
/// let netlist = synthesize_from_unfolding(&stg, &SynthesisOptions::default())?;
/// let v = to_verilog(&stg, &netlist);
/// assert!(v.contains("module paper_fig1"));
/// assert!(v.contains("assign b = a | c;"));
/// # Ok(())
/// # }
/// ```
pub fn to_verilog(stg: &Stg, synthesis: &UnfoldingSynthesis) -> String {
    let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
    let module = stg.name().replace(['-', '.'], "_");
    let inputs: Vec<&str> = stg
        .signals()
        .filter(|&s| stg.signal_kind(s) == SignalKind::Input)
        .map(|s| stg.signal_name(s))
        .collect();
    let outputs: Vec<&str> = synthesis
        .gates
        .iter()
        .map(|g| stg.signal_name(g.signal))
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "// generated from STG `{}`", stg.name());
    let _ = writeln!(
        out,
        "module {module} ({});",
        inputs
            .iter()
            .chain(outputs.iter())
            .copied()
            .collect::<Vec<_>>()
            .join(", ")
    );
    for i in &inputs {
        let _ = writeln!(out, "  input  {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }
    for gate in &synthesis.gates {
        let _ = writeln!(
            out,
            "  assign {} = {};",
            stg.signal_name(gate.signal),
            verilog_expr(&gate.gate, &names)
        );
    }
    out.push_str("endmodule\n");
    out
}

/// Renders a Set/Reset (memory-element) implementation as structural
/// Verilog, instantiating one behavioural latch per signal.
pub fn excitation_to_verilog(stg: &Stg, impls: &[ExcitationImplementation]) -> String {
    let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
    let module = format!("{}_latched", stg.name().replace(['-', '.'], "_"));
    let inputs: Vec<&str> = stg
        .signals()
        .filter(|&s| stg.signal_kind(s) == SignalKind::Input)
        .map(|s| stg.signal_name(s))
        .collect();
    let outputs: Vec<&str> = impls.iter().map(|i| stg.signal_name(i.signal)).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "module {module} ({});",
        inputs
            .iter()
            .chain(outputs.iter())
            .copied()
            .collect::<Vec<_>>()
            .join(", ")
    );
    for i in &inputs {
        let _ = writeln!(out, "  input  {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output reg {o};");
    }
    for imp in impls {
        let name = stg.signal_name(imp.signal);
        let set = verilog_expr(&imp.set, &names);
        let reset = verilog_expr(&imp.reset, &names);
        let _ = writeln!(out, "  wire set_{name} = {set};");
        let _ = writeln!(out, "  wire reset_{name} = {reset};");
        let _ = writeln!(
            out,
            "  always @* begin if (set_{name}) {name} = 1'b1; \
             else if (reset_{name}) {name} = 1'b0; end"
        );
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{synthesize_excitation_functions, MemoryElement};
    use crate::synth::{synthesize_from_unfolding, SynthesisOptions};
    use si_stg::suite::{paper_fig1, vme_read_csc};
    use si_unfolding::UnfoldingOptions;

    #[test]
    fn eqn_lists_all_gates() {
        let stg = vme_read_csc();
        let netlist = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        let eqn = to_eqn(&stg, &netlist);
        assert!(eqn.contains("INORDER = dsr ldtack;"));
        assert!(eqn.contains("lds = "));
        assert!(eqn.contains("csc0 = "));
        assert_eq!(eqn.matches(" = ").count(), 2 + netlist.gates.len());
    }

    #[test]
    fn verilog_shape() {
        let stg = paper_fig1();
        let netlist = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        let v = to_verilog(&stg, &netlist);
        assert!(v.contains("module paper_fig1 (a, c, b);"));
        assert!(v.contains("input  a;"));
        assert!(v.contains("output b;"));
        assert!(v.contains("assign b = a | c;"));
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn verilog_handles_complement_and_products() {
        let stg = vme_read_csc();
        let netlist = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        let v = to_verilog(&stg, &netlist);
        // csc0 = dsr ldtack' + dsr csc0 becomes (dsr & ~ldtack) | (dsr & csc0).
        assert!(v.contains("(dsr & ~ldtack)"), "got:\n{v}");
        assert!(v.contains("(dsr & csc0)"), "got:\n{v}");
    }

    #[test]
    fn latched_verilog_shape() {
        let stg = paper_fig1();
        let impls = synthesize_excitation_functions(
            &stg,
            MemoryElement::MullerC,
            &UnfoldingOptions::default(),
            100_000,
        )
        .expect("ok");
        let v = excitation_to_verilog(&stg, &impls);
        assert!(v.contains("module paper_fig1_latched"));
        assert!(v.contains("wire set_b ="));
        assert!(v.contains("wire reset_b ="));
        assert!(v.contains("output reg b;"));
    }
}
