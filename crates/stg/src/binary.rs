//! Fixed-width binary codes `v ∈ {0,1}^{|A|}` assigned to states and cuts.

use std::fmt;

use crate::signal::{Polarity, SignalId};

/// A binary state vector with one bit per signal.
///
/// Codes are the values attached to SG states and to local configurations of
/// the unfolding segment. The textual form follows the paper: the bit of
/// signal 0 is printed first, e.g. `101` for `a=1, b=0, c=1`.
///
/// # Examples
///
/// ```
/// use si_stg::{BinaryCode, SignalId, Polarity};
///
/// let mut code = BinaryCode::zeros(3);
/// code.set(SignalId(0), true);
/// code.set(SignalId(2), true);
/// assert_eq!(code.to_string(), "101");
/// code.apply(SignalId(2), Polarity::Fall);
/// assert_eq!(code.to_string(), "100");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BinaryCode {
    bits: Vec<u64>,
    len: usize,
}

impl BinaryCode {
    /// The all-zero code over `len` signals.
    pub fn zeros(len: usize) -> Self {
        BinaryCode {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a code from per-signal values, index order.
    pub fn from_bits<I: IntoIterator<Item = bool>>(values: I) -> Self {
        let mut code = BinaryCode::zeros(0);
        for (i, v) in values.into_iter().enumerate() {
            code.len = i + 1;
            if code.bits.len() * 64 < code.len {
                code.bits.push(0);
            }
            if v {
                code.bits[i / 64] |= 1 << (i % 64);
            }
        }
        code
    }

    /// Parses a code from a string of `0`/`1` characters, e.g. `"101"`.
    ///
    /// # Panics
    ///
    /// Panics if the string contains characters other than `0` and `1`.
    pub fn from_str_bits(s: &str) -> Self {
        BinaryCode::from_bits(s.chars().map(|c| {
            assert!(matches!(c, '0' | '1'), "invalid bit character {c:?}");
            c == '1'
        }))
    }

    /// Number of signals covered by the code.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the code covers no signals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn get(&self, signal: SignalId) -> bool {
        let i = signal.index();
        assert!(i < self.len, "signal {signal} out of range");
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets the value of `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn set(&mut self, signal: SignalId, value: bool) {
        let i = signal.index();
        assert!(i < self.len, "signal {signal} out of range");
        if value {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Flips the value of `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn toggle(&mut self, signal: SignalId) {
        let i = signal.index();
        assert!(i < self.len, "signal {signal} out of range");
        self.bits[i / 64] ^= 1 << (i % 64);
    }

    /// Applies a signal change of the given polarity, returning an error
    /// message if the change is inconsistent with the current value (e.g.
    /// `a+` while `a` is already 1).
    ///
    /// # Examples
    ///
    /// ```
    /// use si_stg::{BinaryCode, SignalId, Polarity};
    ///
    /// let mut code = BinaryCode::zeros(1);
    /// assert!(code.try_apply(SignalId(0), Polarity::Rise).is_ok());
    /// assert!(code.try_apply(SignalId(0), Polarity::Rise).is_err());
    /// ```
    pub fn try_apply(&mut self, signal: SignalId, polarity: Polarity) -> Result<(), Polarity> {
        if self.get(signal) != polarity.source_value() {
            return Err(polarity);
        }
        self.set(signal, polarity.target_value());
        Ok(())
    }

    /// Applies a signal change without the consistency check.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn apply(&mut self, signal: SignalId, polarity: Polarity) {
        self.set(signal, polarity.target_value());
    }

    /// Iterates over `(signal, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, bool)> + '_ {
        (0..self.len).map(|i| (SignalId(i as u32), self.get(SignalId(i as u32))))
    }
}

impl fmt::Display for BinaryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, v) in self.iter() {
            f.write_str(if v { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BinaryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BinaryCode({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set() {
        let mut c = BinaryCode::zeros(70);
        assert_eq!(c.len(), 70);
        assert!(!c.get(SignalId(69)));
        c.set(SignalId(69), true);
        assert!(c.get(SignalId(69)));
        c.toggle(SignalId(69));
        assert!(!c.get(SignalId(69)));
    }

    #[test]
    fn from_bits_roundtrip() {
        let c = BinaryCode::from_bits([true, false, true]);
        assert_eq!(c.to_string(), "101");
        let d = BinaryCode::from_str_bits("101");
        assert_eq!(c, d);
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn from_str_rejects_garbage() {
        BinaryCode::from_str_bits("10x");
    }

    #[test]
    fn try_apply_checks_consistency() {
        let mut c = BinaryCode::zeros(2);
        assert!(c.try_apply(SignalId(0), Polarity::Rise).is_ok());
        assert_eq!(c.to_string(), "10");
        assert_eq!(
            c.try_apply(SignalId(0), Polarity::Rise),
            Err(Polarity::Rise)
        );
        assert!(c.try_apply(SignalId(0), Polarity::Fall).is_ok());
        assert_eq!(
            c.try_apply(SignalId(1), Polarity::Fall),
            Err(Polarity::Fall)
        );
    }

    #[test]
    fn hash_and_eq_respect_bits() {
        use std::collections::HashSet;
        let a = BinaryCode::from_str_bits("01");
        let b = BinaryCode::from_str_bits("10");
        let a2 = BinaryCode::from_str_bits("01");
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&a2));
        assert!(!set.contains(&b));
    }

    #[test]
    fn iter_pairs() {
        let c = BinaryCode::from_str_bits("10");
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(SignalId(0), true), (SignalId(1), false)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BinaryCode::zeros(1).get(SignalId(1));
    }
}
