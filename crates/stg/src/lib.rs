//! # si-stg — Signal Transition Graphs
//!
//! The specification language of speed-independent circuit synthesis: a
//! Signal Transition Graph (STG) `G = ⟨N, A, L⟩` is a 1-safe marked Petri net
//! `N` whose transitions are labelled with changes (`+a`, `-a`) of a set of
//! signals `A` (Rosenblum & Yakovlev 1985, Chu 1987).
//!
//! This crate provides:
//!
//! * the [`Stg`] model and [`StgBuilder`] construction API;
//! * [`BinaryCode`] state vectors and the consistency rules for applying
//!   signal changes to them;
//! * a parser ([`parse_g`]) and writer ([`write_g`]) for the `.g`/astg
//!   interchange format used by SIS and Petrify;
//! * parameterised [`generators`] (Muller pipeline, counterflow pipeline, …)
//!   for the scalability experiments;
//! * the benchmark [`suite`] over which Table 1 of the paper is regenerated.
//!
//! ## Example
//!
//! ```
//! use si_stg::{generators::muller_pipeline, write_g, parse_g};
//!
//! # fn main() -> Result<(), si_stg::StgError> {
//! let pipeline = muller_pipeline(4);
//! assert_eq!(pipeline.signal_count(), 6);
//!
//! // Round-trip through the .g interchange format.
//! let text = write_g(&pipeline);
//! let back = parse_g(&text)?;
//! assert_eq!(back.signal_count(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod binary;
mod dot;
mod error;
pub mod generators;
mod model;
mod parse;
mod signal;
pub mod suite;
mod writer;

pub use binary::BinaryCode;
pub use dot::stg_to_dot;
pub use error::StgError;
pub use model::{Stg, StgBuilder};
pub use parse::{parse_g, parse_g_lenient, parse_g_spanned, SourceSpans};
pub use signal::{Polarity, SignalId, SignalKind, SignalTransition};
pub use writer::write_g;
