//! Signals and signal transitions (`a+`, `a-`).

use std::fmt;

/// Index of a signal within an [`Stg`](crate::Stg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub u32);

impl SignalId {
    /// The id as a `usize`, for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// How a signal is driven: by the environment, by the circuit visibly, or by
/// the circuit internally.
///
/// Only non-input signals are implemented as gates; inputs constrain the
/// environment. Semi-modularity (output persistency) applies to [`Output`]
/// and [`Internal`] signals.
///
/// [`Output`]: SignalKind::Output
/// [`Internal`]: SignalKind::Internal
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Driven by the environment; never synthesised.
    Input,
    /// Driven by the circuit and observable at its interface.
    Output,
    /// Driven by the circuit but hidden (e.g. CSC resolution signals).
    Internal,
}

impl SignalKind {
    /// Returns `true` for signals the circuit must implement
    /// ([`Output`](SignalKind::Output) and [`Internal`](SignalKind::Internal)).
    pub fn is_implementable(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SignalKind::Input => "input",
            SignalKind::Output => "output",
            SignalKind::Internal => "internal",
        })
    }
}

/// Direction of a signal change: rising (`+`, 0→1) or falling (`-`, 1→0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// `a+`: the signal switches from 0 to 1.
    Rise,
    /// `a-`: the signal switches from 1 to 0.
    Fall,
}

impl Polarity {
    /// The opposite direction.
    pub fn opposite(self) -> Polarity {
        match self {
            Polarity::Rise => Polarity::Fall,
            Polarity::Fall => Polarity::Rise,
        }
    }

    /// The value of the signal *after* a change of this polarity.
    pub fn target_value(self) -> bool {
        matches!(self, Polarity::Rise)
    }

    /// The value of the signal *before* a change of this polarity.
    pub fn source_value(self) -> bool {
        !self.target_value()
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Polarity::Rise => "+",
            Polarity::Fall => "-",
        })
    }
}

/// A signal transition label `±a`: a specific change of a specific signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalTransition {
    /// The signal that changes.
    pub signal: SignalId,
    /// The direction of the change.
    pub polarity: Polarity,
}

impl SignalTransition {
    /// A rising transition of `signal`.
    pub fn rise(signal: SignalId) -> Self {
        SignalTransition {
            signal,
            polarity: Polarity::Rise,
        }
    }

    /// A falling transition of `signal`.
    pub fn fall(signal: SignalId) -> Self {
        SignalTransition {
            signal,
            polarity: Polarity::Fall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_algebra() {
        assert_eq!(Polarity::Rise.opposite(), Polarity::Fall);
        assert_eq!(Polarity::Fall.opposite(), Polarity::Rise);
        assert!(Polarity::Rise.target_value());
        assert!(!Polarity::Rise.source_value());
        assert!(!Polarity::Fall.target_value());
        assert!(Polarity::Fall.source_value());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Polarity::Rise.to_string(), "+");
        assert_eq!(Polarity::Fall.to_string(), "-");
        assert_eq!(SignalKind::Input.to_string(), "input");
        assert_eq!(SignalKind::Internal.to_string(), "internal");
    }

    #[test]
    fn implementable_kinds() {
        assert!(!SignalKind::Input.is_implementable());
        assert!(SignalKind::Output.is_implementable());
        assert!(SignalKind::Internal.is_implementable());
    }

    #[test]
    fn constructors() {
        let s = SignalId(3);
        assert_eq!(SignalTransition::rise(s).polarity, Polarity::Rise);
        assert_eq!(SignalTransition::fall(s).polarity, Polarity::Fall);
        assert_eq!(SignalTransition::rise(s).signal, s);
    }
}
