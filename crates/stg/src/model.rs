//! The Signal Transition Graph model `G = ⟨N, A, L⟩` and its builder.

use std::collections::HashMap;
use std::fmt;

use si_petri::{PetriNet, PlaceId, TransitionId};

use crate::binary::BinaryCode;
use crate::error::StgError;
use crate::signal::{Polarity, SignalId, SignalKind, SignalTransition};

#[derive(Debug, Clone)]
struct SignalData {
    name: String,
    kind: SignalKind,
}

/// A Signal Transition Graph: a 1-safe marked Petri net whose transitions are
/// labelled with signal changes `±a`.
///
/// Unlabelled ("dummy") transitions are permitted by the data model (their
/// label is `None`) so that `.g` files using `.dummy` can be represented, but
/// the synthesis algorithms in this workspace require fully labelled STGs and
/// reject dummies up front.
///
/// An STG optionally carries the initial binary state `v₀`. Generators set it
/// explicitly; for parsed files it can be inferred from the reachability
/// graph (see `si-stategraph`).
///
/// # Examples
///
/// ```
/// use si_stg::{StgBuilder, SignalKind};
///
/// # fn main() -> Result<(), si_stg::StgError> {
/// let mut b = StgBuilder::new();
/// let req = b.signal("req", SignalKind::Input);
/// let ack = b.signal("ack", SignalKind::Output);
/// let req_p = b.rise(req);
/// let ack_p = b.rise(ack);
/// let req_m = b.fall(req);
/// let ack_m = b.fall(ack);
/// b.arc_tt(req_p, ack_p);
/// b.arc_tt(ack_p, req_m);
/// b.arc_tt(req_m, ack_m);
/// let back = b.arc_tt(ack_m, req_p);
/// b.mark(back);
/// b.initial_all_zero();
/// let stg = b.build()?;
/// assert_eq!(stg.signal_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Stg {
    net: PetriNet,
    signals: Vec<SignalData>,
    labels: Vec<Option<SignalTransition>>,
    initial_code: Option<BinaryCode>,
    name: String,
}

impl Stg {
    /// The underlying Petri net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// A human-readable name for the specification (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Iterates over all signal ids.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len() as u32).map(SignalId)
    }

    /// The name of `signal`.
    pub fn signal_name(&self, signal: SignalId) -> &str {
        &self.signals[signal.index()].name
    }

    /// The kind of `signal`.
    pub fn signal_kind(&self, signal: SignalId) -> SignalKind {
        self.signals[signal.index()].kind
    }

    /// Looks up a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// The label of `transition` (`None` for a dummy).
    pub fn label(&self, transition: TransitionId) -> Option<SignalTransition> {
        self.labels[transition.index()]
    }

    /// All transitions labelled with a change of `signal`.
    pub fn transitions_of(&self, signal: SignalId) -> Vec<TransitionId> {
        self.net
            .transitions()
            .filter(|&t| self.labels[t.index()].is_some_and(|l| l.signal == signal))
            .collect()
    }

    /// The initial binary state `v₀`, if known.
    pub fn initial_code(&self) -> Option<&BinaryCode> {
        self.initial_code.as_ref()
    }

    /// Sets (or replaces) the initial binary state.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::CodeWidthMismatch`] if the code width differs from
    /// the signal count.
    pub fn set_initial_code(&mut self, code: BinaryCode) -> Result<(), StgError> {
        if code.len() != self.signals.len() {
            return Err(StgError::CodeWidthMismatch {
                expected: self.signals.len(),
                found: code.len(),
            });
        }
        self.initial_code = Some(code);
        Ok(())
    }

    /// Returns `true` if no transition is a dummy.
    pub fn is_fully_labelled(&self) -> bool {
        self.labels.iter().all(|l| l.is_some())
    }

    /// Renders a transition label like `a+`, or the transition name for a
    /// dummy.
    pub fn transition_label_string(&self, transition: TransitionId) -> String {
        match self.label(transition) {
            Some(st) => format!("{}{}", self.signal_name(st.signal), st.polarity),
            None => self.net.transition_name(transition).to_owned(),
        }
    }

    /// The implementable (non-input) signals, in id order.
    pub fn implementable_signals(&self) -> Vec<SignalId> {
        self.signals()
            .filter(|&s| self.signal_kind(s).is_implementable())
            .collect()
    }

    /// Structural validation: the net is well-formed (rules shared with
    /// the linter via [`si_petri::structural::validation_errors`]) and the
    /// initial code (if set) has the right width (rule shared via
    /// [`crate::analysis::code_width_error`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated [`StgError`].
    pub fn validate(&self) -> Result<(), StgError> {
        self.net.validate()?;
        match crate::analysis::code_width_error(self) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "STG `{}`: {} signals, {} places, {} transitions",
            self.name,
            self.signals.len(),
            self.net.place_count(),
            self.net.transition_count()
        )
    }
}

/// Incremental construction of an [`Stg`].
///
/// The builder mirrors the `.g` file structure: declare signals, create
/// labelled transition instances, connect them through explicit or implicit
/// places, and mark the initial places. See [`Stg`] for a complete example.
#[derive(Debug, Clone, Default)]
pub struct StgBuilder {
    net: PetriNet,
    signals: Vec<SignalData>,
    names: HashMap<String, SignalId>,
    labels: Vec<Option<SignalTransition>>,
    initial_code: Option<BinaryCode>,
    initial_values: HashMap<SignalId, bool>,
    name: String,
}

impl StgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        StgBuilder {
            name: "stg".to_owned(),
            ..StgBuilder::default()
        }
    }

    /// Sets the specification name used in reports.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Declares a signal. Returns the existing id if the name was already
    /// declared (the kind is left unchanged in that case).
    pub fn signal(&mut self, name: impl Into<String>, kind: SignalKind) -> SignalId {
        let name = name.into();
        if let Some(&id) = self.names.get(&name) {
            return id;
        }
        let id = SignalId(self.signals.len() as u32);
        self.names.insert(name.clone(), id);
        self.signals.push(SignalData { name, kind });
        id
    }

    /// Declares an input signal.
    pub fn input(&mut self, name: impl Into<String>) -> SignalId {
        self.signal(name, SignalKind::Input)
    }

    /// Declares an output signal.
    pub fn output(&mut self, name: impl Into<String>) -> SignalId {
        self.signal(name, SignalKind::Output)
    }

    /// Declares an internal signal.
    pub fn internal(&mut self, name: impl Into<String>) -> SignalId {
        self.signal(name, SignalKind::Internal)
    }

    /// Adds a transition labelled `signal`/`polarity`.
    pub fn transition(&mut self, signal: SignalId, polarity: Polarity) -> TransitionId {
        let name = format!("{}{}", self.signals[signal.index()].name, polarity);
        let t = self.net.add_transition(name);
        self.labels
            .push(Some(SignalTransition { signal, polarity }));
        t
    }

    /// Adds a rising transition `signal+`.
    pub fn rise(&mut self, signal: SignalId) -> TransitionId {
        self.transition(signal, Polarity::Rise)
    }

    /// Adds a falling transition `signal-`.
    pub fn fall(&mut self, signal: SignalId) -> TransitionId {
        self.transition(signal, Polarity::Fall)
    }

    /// Adds an unlabelled (dummy) transition.
    pub fn dummy(&mut self, name: impl Into<String>) -> TransitionId {
        let t = self.net.add_transition(name);
        self.labels.push(None);
        t
    }

    /// Adds an explicit place.
    pub fn place(&mut self, name: impl Into<String>) -> PlaceId {
        self.net.add_place(name)
    }

    /// Adds a place→transition arc.
    pub fn arc_pt(&mut self, place: PlaceId, transition: TransitionId) {
        self.net.add_arc_pt(place, transition);
    }

    /// Adds a transition→place arc.
    pub fn arc_tp(&mut self, transition: TransitionId, place: PlaceId) {
        self.net.add_arc_tp(transition, place);
    }

    /// Connects two transitions through a fresh implicit place (the `.g`
    /// shorthand `t1 t2`). Returns the created place so it can be marked.
    pub fn arc_tt(&mut self, from: TransitionId, to: TransitionId) -> PlaceId {
        let name = format!(
            "<{},{}>",
            self.net.transition_name(from).to_owned(),
            self.net.transition_name(to).to_owned()
        );
        let p = self.net.add_place(name);
        self.net.add_arc_tp(from, p);
        self.net.add_arc_pt(p, to);
        p
    }

    /// Marks `place` in the initial marking.
    pub fn mark(&mut self, place: PlaceId) {
        self.net.mark_initially(place);
    }

    /// Sets the initial value of one signal (used to assemble `v₀`).
    pub fn initial_value(&mut self, signal: SignalId, value: bool) {
        self.initial_values.insert(signal, value);
    }

    /// Declares `v₀ = 0…0`.
    pub fn initial_all_zero(&mut self) {
        for i in 0..self.signals.len() {
            self.initial_values.insert(SignalId(i as u32), false);
        }
    }

    /// Sets the complete initial code at once.
    pub fn set_initial_code(&mut self, code: BinaryCode) {
        self.initial_code = Some(code);
    }

    /// Finalises the STG.
    ///
    /// The initial code is assembled from [`initial_value`] /
    /// [`initial_all_zero`] calls if every signal has a declared value;
    /// otherwise it is left unset (to be inferred later).
    ///
    /// # Errors
    ///
    /// Returns [`StgError`] if the underlying net fails validation or a
    /// preset initial code has the wrong width.
    ///
    /// [`initial_value`]: StgBuilder::initial_value
    /// [`initial_all_zero`]: StgBuilder::initial_all_zero
    pub fn build(self) -> Result<Stg, StgError> {
        let stg = self.build_unvalidated()?;
        stg.validate()?;
        Ok(stg)
    }

    /// Finalises the STG **without** running [`Stg::validate`].
    ///
    /// This is the entry point for analysis tooling (the linter) that wants
    /// to construct structurally malformed STGs — empty presets, empty
    /// initial markings — and report every violation as a diagnostic with a
    /// source span, instead of failing construction on the first one.
    /// Initial-code assembly errors still apply: they concern data this
    /// builder itself was given inconsistently.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::PartialInitialValues`] if initial values were
    /// declared for some but not all signals.
    pub fn build_unvalidated(self) -> Result<Stg, StgError> {
        let initial_code = match self.initial_code {
            Some(code) => Some(code),
            None if self.signals.len() == self.initial_values.len() => {
                let mut code = BinaryCode::zeros(self.signals.len());
                for (&sig, &v) in &self.initial_values {
                    code.set(sig, v);
                }
                Some(code)
            }
            None if !self.initial_values.is_empty() => {
                return Err(StgError::PartialInitialValues {
                    declared: self.initial_values.len(),
                    signals: self.signals.len(),
                });
            }
            None => None,
        };
        let stg = Stg {
            net: self.net,
            signals: self.signals,
            labels: self.labels,
            initial_code,
            name: self.name,
        };
        Ok(stg)
    }

    /// Finalises the STG, panicking on failure.
    ///
    /// For generators and fixtures whose construction is an internal
    /// invariant: a failure here is a bug in the construction code, not a
    /// user-facing condition, so there is nothing structured to return.
    ///
    /// # Panics
    ///
    /// Panics with the underlying [`StgError`] if validation fails.
    #[must_use]
    pub fn must_build(self) -> Stg {
        match self.build() {
            Ok(stg) => stg,
            Err(e) => unreachable!("internal STG construction failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake() -> Stg {
        let mut b = StgBuilder::new();
        b.set_name("handshake");
        let req = b.input("req");
        let ack = b.output("ack");
        let req_p = b.rise(req);
        let ack_p = b.rise(ack);
        let req_m = b.fall(req);
        let ack_m = b.fall(ack);
        b.arc_tt(req_p, ack_p);
        b.arc_tt(ack_p, req_m);
        b.arc_tt(req_m, ack_m);
        let back = b.arc_tt(ack_m, req_p);
        b.mark(back);
        b.initial_all_zero();
        b.build().expect("valid stg")
    }

    #[test]
    fn builder_roundtrip() {
        let stg = handshake();
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().place_count(), 4);
        assert!(stg.is_fully_labelled());
        assert_eq!(
            stg.initial_code().map(ToString::to_string).as_deref(),
            Some("00")
        );
        assert_eq!(stg.name(), "handshake");
    }

    #[test]
    fn signal_lookup() {
        let stg = handshake();
        let req = stg.signal_by_name("req").expect("req exists");
        assert_eq!(stg.signal_name(req), "req");
        assert_eq!(stg.signal_kind(req), SignalKind::Input);
        assert!(stg.signal_by_name("nothere").is_none());
        assert_eq!(stg.implementable_signals().len(), 1);
    }

    #[test]
    fn transitions_of_signal() {
        let stg = handshake();
        let ack = stg.signal_by_name("ack").expect("ack exists");
        let ts = stg.transitions_of(ack);
        assert_eq!(ts.len(), 2);
        for t in ts {
            assert_eq!(stg.label(t).map(|l| l.signal), Some(ack));
        }
    }

    #[test]
    fn label_strings() {
        let stg = handshake();
        let labels: Vec<_> = stg
            .net()
            .transitions()
            .map(|t| stg.transition_label_string(t))
            .collect();
        assert_eq!(labels, vec!["req+", "ack+", "req-", "ack-"]);
    }

    #[test]
    fn duplicate_signal_names_reuse_id() {
        let mut b = StgBuilder::new();
        let a1 = b.input("a");
        let a2 = b.output("a");
        assert_eq!(a1, a2);
        // First declaration wins for the kind.
        assert_eq!(b.signals[a1.index()].kind, SignalKind::Input);
    }

    #[test]
    fn partial_initial_values_rejected() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let _b2 = b.input("b");
        let t1 = b.rise(a);
        let t2 = b.fall(a);
        b.arc_tt(t1, t2);
        let back = b.arc_tt(t2, t1);
        b.mark(back);
        b.initial_value(a, false);
        assert!(matches!(
            b.build(),
            Err(StgError::PartialInitialValues {
                declared: 1,
                signals: 2
            })
        ));
    }

    #[test]
    fn set_initial_code_width_checked() {
        let mut stg = handshake();
        assert!(stg
            .set_initial_code(BinaryCode::from_str_bits("1"))
            .is_err());
        assert!(stg
            .set_initial_code(BinaryCode::from_str_bits("10"))
            .is_ok());
        assert_eq!(
            stg.initial_code().map(ToString::to_string).as_deref(),
            Some("10")
        );
    }

    #[test]
    fn dummy_transitions_flagged() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let t1 = b.rise(a);
        let d = b.dummy("skip");
        let t2 = b.fall(a);
        b.arc_tt(t1, d);
        b.arc_tt(d, t2);
        let back = b.arc_tt(t2, t1);
        b.mark(back);
        b.initial_all_zero();
        let stg = b.build().expect("valid stg");
        assert!(!stg.is_fully_labelled());
        assert_eq!(stg.transition_label_string(d), "skip");
    }

    #[test]
    fn display_summarises() {
        let stg = handshake();
        let text = stg.to_string();
        assert!(text.contains("handshake"));
        assert!(text.contains("2 signals"));
    }
}
