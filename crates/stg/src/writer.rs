//! Writer producing `.g` text from an [`Stg`].

use std::collections::HashMap;
use std::fmt::Write as _;

use si_petri::{PlaceId, TransitionId};

use crate::model::Stg;
use crate::signal::SignalKind;

/// Serialises `stg` to `.g` text accepted by [`parse_g`](crate::parse_g).
///
/// Places with exactly one producer and one consumer are collapsed into the
/// `t1 t2` implicit-place shorthand; remaining places are written explicitly
/// (renamed `p0`, `p1`, … when their generated names are not valid tokens).
/// If the STG carries an initial code, an `.initial { … }` extension section
/// is emitted so the round trip preserves `v₀`.
///
/// # Examples
///
/// ```
/// use si_stg::{parse_g, write_g};
///
/// # fn main() -> Result<(), si_stg::StgError> {
/// let stg = parse_g(
///     ".model m\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n\
///      .marking { <b-,a+> }\n.initial { a=0 b=0 }\n.end",
/// )?;
/// let text = write_g(&stg);
/// let reparsed = parse_g(&text)?;
/// assert_eq!(reparsed.signal_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn write_g(stg: &Stg) -> String {
    let net = stg.net();

    // Unique token per transition: `a+`, then `a+/2`, `a+/3`, …
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut token: HashMap<TransitionId, String> = HashMap::new();
    for t in net.transitions() {
        let base = stg.transition_label_string(t);
        let n = counts.entry(base.clone()).or_insert(0);
        *n += 1;
        let tok = if *n == 1 { base } else { format!("{base}/{n}") };
        token.insert(t, tok);
    }

    // Classify places: implicit (1 producer, 1 consumer) vs explicit.
    let mut implicit: HashMap<PlaceId, (TransitionId, TransitionId)> = HashMap::new();
    let mut explicit_name: HashMap<PlaceId, String> = HashMap::new();
    let mut fresh = 0usize;
    for p in net.places() {
        let pre = net.place_preset(p);
        let post = net.place_postset(p);
        if pre.len() == 1 && post.len() == 1 {
            implicit.insert(p, (pre[0], post[0]));
        } else {
            let raw = net.place_name(p);
            let ok = !raw.is_empty()
                && raw.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !raw.starts_with('.');
            let name = if ok {
                raw.to_owned()
            } else {
                loop {
                    let cand = format!("p{fresh}");
                    fresh += 1;
                    if net.places().all(|q| net.place_name(q) != cand) {
                        break cand;
                    }
                }
            };
            explicit_name.insert(p, name);
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, ".model {}", stg.name());
    for (kind, directive) in [
        (SignalKind::Input, ".inputs"),
        (SignalKind::Output, ".outputs"),
        (SignalKind::Internal, ".internal"),
    ] {
        let names: Vec<&str> = stg
            .signals()
            .filter(|&s| stg.signal_kind(s) == kind)
            .map(|s| stg.signal_name(s))
            .collect();
        if !names.is_empty() {
            let _ = writeln!(out, "{directive} {}", names.join(" "));
        }
    }
    let dummies: Vec<&String> = net
        .transitions()
        .filter(|&t| stg.label(t).is_none())
        .map(|t| &token[&t])
        .collect();
    if !dummies.is_empty() {
        let mut line = String::from(".dummy");
        for d in dummies {
            line.push(' ');
            line.push_str(d);
        }
        let _ = writeln!(out, "{line}");
    }

    out.push_str(".graph\n");
    for t in net.transitions() {
        let mut targets = Vec::new();
        for &p in net.postset(t) {
            match implicit.get(&p) {
                Some(&(_, consumer)) => targets.push(token[&consumer].clone()),
                None => targets.push(explicit_name[&p].clone()),
            }
        }
        if !targets.is_empty() {
            let _ = writeln!(out, "{} {}", token[&t], targets.join(" "));
        }
    }
    for p in net.places() {
        if let Some(name) = explicit_name.get(&p) {
            let consumers: Vec<&String> = net.place_postset(p).iter().map(|t| &token[t]).collect();
            if !consumers.is_empty() {
                let mut line = name.clone();
                for c in consumers {
                    line.push(' ');
                    line.push_str(c);
                }
                let _ = writeln!(out, "{line}");
            }
        }
    }

    let mut marking_tokens = Vec::new();
    for p in net.places() {
        if net.initial_marking().contains(p) {
            match implicit.get(&p) {
                Some(&(producer, consumer)) => {
                    marking_tokens.push(format!("<{},{}>", token[&producer], token[&consumer]));
                }
                None => marking_tokens.push(explicit_name[&p].clone()),
            }
        }
    }
    let _ = writeln!(out, ".marking {{ {} }}", marking_tokens.join(" "));

    if let Some(code) = stg.initial_code() {
        let assigns: Vec<String> = stg
            .signals()
            .map(|s| format!("{}={}", stg.signal_name(s), if code.get(s) { 1 } else { 0 }))
            .collect();
        let _ = writeln!(out, ".initial {{ {} }}", assigns.join(" "));
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StgBuilder;
    use crate::parse::parse_g;

    fn sample() -> Stg {
        let mut b = StgBuilder::new();
        b.set_name("sample");
        let a = b.input("a");
        let c = b.output("c");
        let a_p = b.rise(a);
        let c_p = b.rise(c);
        let a_m = b.fall(a);
        let c_m = b.fall(c);
        b.arc_tt(a_p, c_p);
        b.arc_tt(c_p, a_m);
        b.arc_tt(a_m, c_m);
        let back = b.arc_tt(c_m, a_p);
        b.mark(back);
        b.initial_all_zero();
        b.build().expect("valid")
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let stg = sample();
        let text = write_g(&stg);
        let re = parse_g(&text).expect("reparses");
        assert_eq!(re.name(), stg.name());
        assert_eq!(re.signal_count(), stg.signal_count());
        assert_eq!(re.net().transition_count(), stg.net().transition_count());
        assert_eq!(re.net().place_count(), stg.net().place_count());
        assert_eq!(
            re.net().initial_marking().len(),
            stg.net().initial_marking().len()
        );
        assert_eq!(
            re.initial_code().map(ToString::to_string),
            stg.initial_code().map(ToString::to_string)
        );
    }

    #[test]
    fn duplicate_labels_get_indices() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let x = b.output("x");
        let a1 = b.rise(a);
        let x1 = b.rise(x);
        let a2 = b.fall(a);
        let x2 = b.fall(x);
        let x3 = b.rise(x); // second x+ instance
        let x4 = b.fall(x); // second x- instance
        b.arc_tt(a1, x1);
        b.arc_tt(x1, a2);
        b.arc_tt(a2, x2);
        b.arc_tt(x2, x3);
        b.arc_tt(x3, x4);
        let back = b.arc_tt(x4, a1);
        b.mark(back);
        b.initial_all_zero();
        let stg = b.build().expect("valid");
        let text = write_g(&stg);
        assert!(text.contains("x+/2"));
        assert!(text.contains("x-/2"));
        let re = parse_g(&text).expect("reparses");
        assert_eq!(re.net().transition_count(), 6);
    }

    #[test]
    fn explicit_place_with_fanout_kept() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let c = b.output("c");
        let a_p = b.rise(a);
        let c_p = b.rise(c);
        let a_m = b.fall(a);
        let c_m = b.fall(c);
        // A choice place feeding both a+ and c+ would be place-to-two-
        // transitions; use a merge place with two producers instead.
        let merge = b.place("merge");
        b.arc_tp(a_p, merge);
        b.arc_tp(c_p, merge);
        b.arc_pt(merge, a_m);
        b.arc_tt(a_m, c_m);
        let p1 = b.arc_tt(c_m, a_p);
        let p2 = b.arc_tt(c_m, c_p);
        b.mark(p1);
        b.mark(p2);
        b.initial_all_zero();
        let stg = b.build().expect("valid");
        let text = write_g(&stg);
        assert!(text.contains("merge"));
        let re = parse_g(&text).expect("reparses");
        assert_eq!(re.net().place_count(), stg.net().place_count());
    }
}
