//! Error types for STG construction and parsing.

use std::error::Error;
use std::fmt;

use si_petri::NetError;

/// Errors raised while building or parsing an STG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StgError {
    /// The underlying Petri net is malformed.
    Net(NetError),
    /// An initial binary code has the wrong width.
    CodeWidthMismatch {
        /// Expected width (= signal count).
        expected: usize,
        /// Width that was provided.
        found: usize,
    },
    /// Initial values were declared for some but not all signals.
    PartialInitialValues {
        /// Number of signals with declared values.
        declared: usize,
        /// Total number of signals.
        signals: usize,
    },
    /// A `.g` file could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A transition name referenced a signal that was never declared.
    UnknownSignal {
        /// The undeclared name.
        name: String,
    },
    /// A signal (or dummy) name was declared more than once.
    DuplicateSignal {
        /// The doubly declared name.
        name: String,
    },
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Net(e) => write!(f, "invalid net: {e}"),
            StgError::CodeWidthMismatch { expected, found } => write!(
                f,
                "initial code has {found} bits but the STG has {expected} signals"
            ),
            StgError::PartialInitialValues { declared, signals } => write!(
                f,
                "initial values declared for {declared} of {signals} signals"
            ),
            StgError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            StgError::UnknownSignal { name } => {
                write!(f, "signal `{name}` was not declared")
            }
            StgError::DuplicateSignal { name } => {
                write!(f, "signal `{name}` was declared more than once")
            }
        }
    }
}

impl Error for StgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StgError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for StgError {
    fn from(e: NetError) -> Self {
        StgError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StgError::CodeWidthMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("2 bits"));
        let e = StgError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 4: bad token");
        let e = StgError::UnknownSignal { name: "x".into() };
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn net_error_wraps_with_source() {
        use std::error::Error as _;
        let e = StgError::from(NetError::EmptyInitialMarking);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("invalid net"));
    }
}
