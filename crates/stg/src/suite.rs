//! The benchmark suite: the paper's worked examples plus reconstructions of
//! classic asynchronous controllers.
//!
//! The original DAC'97 benchmark `.g` files are not available offline, so
//! Table 1 is regenerated over this suite (see `DESIGN.md`, "Substitutions").
//! Every entry is a closed, consistent, 1-safe STG; the integration tests
//! check consistency, semi-modularity and (where expected) CSC for each one.

use crate::model::{Stg, StgBuilder};

/// The STG of the paper's Figure 1(b): three signals `a`, `c` (inputs) and
/// `b` (output), with a choice at the initial place and concurrency between
/// `+b` and `+c`.
///
/// The paper derives `C_On(b) = a + c` and `C_Off(b) = a̅c̅` from it.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
///
/// let stg = paper_fig1();
/// assert_eq!(stg.signal_count(), 3);
/// assert_eq!(stg.net().place_count(), 9);
/// ```
pub fn paper_fig1() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("paper-fig1");
    let sa = b.input("a");
    let sb = b.output("b");
    let sc = b.input("c");

    let p: Vec<_> = (1..=9).map(|i| b.place(format!("p{i}"))).collect();
    let pid = |i: usize| p[i - 1];

    // +a: p1 → {p2, p3}
    let a_plus = b.rise(sa);
    b.arc_pt(pid(1), a_plus);
    b.arc_tp(a_plus, pid(2));
    b.arc_tp(a_plus, pid(3));
    // +c (first instance): p1 → p4
    let c_plus1 = b.rise(sc);
    b.arc_pt(pid(1), c_plus1);
    b.arc_tp(c_plus1, pid(4));
    // +b (first instance): p4 → {p7, p8}
    let b_plus1 = b.rise(sb);
    b.arc_pt(pid(4), b_plus1);
    b.arc_tp(b_plus1, pid(7));
    b.arc_tp(b_plus1, pid(8));
    // +b (second instance): p2 → p5
    let b_plus2 = b.rise(sb);
    b.arc_pt(pid(2), b_plus2);
    b.arc_tp(b_plus2, pid(5));
    // +c (second instance): p3 → {p6, p8}
    let c_plus2 = b.rise(sc);
    b.arc_pt(pid(3), c_plus2);
    b.arc_tp(c_plus2, pid(6));
    b.arc_tp(c_plus2, pid(8));
    // -a: {p5, p6} → p7
    let a_minus = b.fall(sa);
    b.arc_pt(pid(5), a_minus);
    b.arc_pt(pid(6), a_minus);
    b.arc_tp(a_minus, pid(7));
    // -c: {p7, p8} → p9
    let c_minus = b.fall(sc);
    b.arc_pt(pid(7), c_minus);
    b.arc_pt(pid(8), c_minus);
    b.arc_tp(c_minus, pid(9));
    // -b: p9 → p1
    let b_minus = b.fall(sb);
    b.arc_pt(pid(9), b_minus);
    b.arc_tp(b_minus, pid(1));

    b.mark(pid(1));
    b.initial_all_zero();
    b.must_build()
}

/// The STG of the paper's Figure 4(a)/(b): seven signals `a…g`, one fork
/// into three concurrent branches joined by `-a`.
///
/// `a`, `d`, `g` are outputs; `b`, `c`, `e`, `f` inputs. The paper computes
/// the ER cover approximation `C*(+d') = a d̅ g̅` and the on-set approximation
/// of `a` over the approximation set `{p4, p7, p10}`.
pub fn paper_fig4ab() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("paper-fig4ab");
    let sa = b.output("a");
    let sb = b.input("b");
    let sc = b.input("c");
    let sd = b.output("d");
    let se = b.input("e");
    let sf = b.input("f");
    let sg = b.output("g");

    let p: Vec<_> = (1..=11).map(|i| b.place(format!("p{i}"))).collect();
    let pid = |i: usize| p[i - 1];

    // +a: p1 → {p2, p3, p4}
    let a_plus = b.rise(sa);
    b.arc_pt(pid(1), a_plus);
    for i in [2, 3, 4] {
        b.arc_tp(a_plus, pid(i));
    }
    // Left branch: p2 → +b → p5 → +e → p8
    let b_plus = b.rise(sb);
    b.arc_pt(pid(2), b_plus);
    b.arc_tp(b_plus, pid(5));
    let e_plus = b.rise(se);
    b.arc_pt(pid(5), e_plus);
    b.arc_tp(e_plus, pid(8));
    // Middle branch: p3 → +c → p6 → +f → p9
    let c_plus = b.rise(sc);
    b.arc_pt(pid(3), c_plus);
    b.arc_tp(c_plus, pid(6));
    let f_plus = b.rise(sf);
    b.arc_pt(pid(6), f_plus);
    b.arc_tp(f_plus, pid(9));
    // Right branch: p4 → +d → p7 → +g → p10
    let d_plus = b.rise(sd);
    b.arc_pt(pid(4), d_plus);
    b.arc_tp(d_plus, pid(7));
    let g_plus = b.rise(sg);
    b.arc_pt(pid(7), g_plus);
    b.arc_tp(g_plus, pid(10));
    // Join: -a: {p8, p9, p10} → p11
    let a_minus = b.fall(sa);
    for i in [8, 9, 10] {
        b.arc_pt(pid(i), a_minus);
    }
    b.arc_tp(a_minus, pid(11));
    // Closure (not drawn in the paper's fragment): reset all signals
    // sequentially and return to p1 so the STG is a consistent cycle.
    let b_minus = b.fall(sb);
    let c_minus = b.fall(sc);
    let d_minus = b.fall(sd);
    let e_minus = b.fall(se);
    let f_minus = b.fall(sf);
    let g_minus = b.fall(sg);
    b.arc_pt(pid(11), b_minus);
    b.arc_tt(b_minus, c_minus);
    b.arc_tt(c_minus, d_minus);
    b.arc_tt(d_minus, e_minus);
    b.arc_tt(e_minus, f_minus);
    b.arc_tt(f_minus, g_minus);
    b.arc_tp(g_minus, pid(1));

    b.mark(pid(1));
    b.initial_all_zero();
    b.must_build()
}

/// The STG fragment of the paper's Figure 4(c), closed into a consistent
/// cycle: five signals `a…e`; `+a` forks into a `+b → +c → -a` branch and a
/// concurrent `+d → +e` branch, rejoined by a reset chain.
///
/// Used by the refinement example: the restricted MR covers of the chain
/// `p2, p4, p7, p9` refine the approximation `d e̅` of place `p5` into
/// `a c̅ d e̅ + b c d e̅`.
pub fn paper_fig4c() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("paper-fig4c");
    let sa = b.output("a");
    let sb = b.input("b");
    let sc = b.input("c");
    let sd = b.output("d");
    let se = b.input("e");

    // The paper's fragment numbers places p1…p9, with p6 belonging to a
    // part of the net the refinement example never touches; only the eight
    // used places are instantiated (keeping the paper's names).
    let used = [1usize, 2, 3, 4, 5, 7, 8, 9];
    let created: Vec<_> = used.iter().map(|i| b.place(format!("p{i}"))).collect();
    let pid = |i: usize| {
        match used.iter().position(|&u| u == i) {
            Some(idx) => created[idx],
            // p6 belongs to the untouched part of the net; asking for it
            // is a bug in this function, not a runtime condition.
            None => unreachable!("place p{i} is not part of the fragment"),
        }
    };

    // +a: p1 → {p2, p3}
    let a_plus = b.rise(sa);
    b.arc_pt(pid(1), a_plus);
    b.arc_tp(a_plus, pid(2));
    b.arc_tp(a_plus, pid(3));
    // Left branch: p2 → +b → p4 → +c → p7 → -a → p9
    let b_plus = b.rise(sb);
    b.arc_pt(pid(2), b_plus);
    b.arc_tp(b_plus, pid(4));
    let c_plus = b.rise(sc);
    b.arc_pt(pid(4), c_plus);
    b.arc_tp(c_plus, pid(7));
    let a_minus = b.fall(sa);
    b.arc_pt(pid(7), a_minus);
    b.arc_tp(a_minus, pid(9));
    // Right branch: p3 → +d → p5 → +e → p8
    let d_plus = b.rise(sd);
    b.arc_pt(pid(3), d_plus);
    b.arc_tp(d_plus, pid(5));
    let e_plus = b.rise(se);
    b.arc_pt(pid(5), e_plus);
    b.arc_tp(e_plus, pid(8));
    // Closure: {p9, p8} → -b → -c → -d → -e → p1
    let b_minus = b.fall(sb);
    b.arc_pt(pid(9), b_minus);
    b.arc_pt(pid(8), b_minus);
    let c_minus = b.fall(sc);
    let d_minus = b.fall(sd);
    let e_minus = b.fall(se);
    b.arc_tt(b_minus, c_minus);
    b.arc_tt(c_minus, d_minus);
    b.arc_tt(d_minus, e_minus);
    b.arc_tp(e_minus, pid(1));

    b.mark(pid(1));
    b.initial_all_zero();
    b.must_build()
}

/// The classic VME bus controller (read cycle) **without** CSC resolution —
/// the well-known specification in which the request phase and the release
/// phase pass through equal binary codes with different futures, i.e. it
/// has a CSC conflict (our checker reports the shared code region 11100
/// over `dsr, ldtack, lds, d, dtack`).
///
/// Signals: `dsr`, `ldtack` inputs; `lds`, `d`, `dtack` outputs.
pub fn vme_read_no_csc() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("vme-read-no-csc");
    let dsr = b.input("dsr");
    let ldtack = b.input("ldtack");
    let lds = b.output("lds");
    let d = b.output("d");
    let dtack = b.output("dtack");

    let dsr_p = b.rise(dsr);
    let lds_p = b.rise(lds);
    let ldtack_p = b.rise(ldtack);
    let d_p = b.rise(d);
    let dtack_p = b.rise(dtack);
    let dsr_m = b.fall(dsr);
    let d_m = b.fall(d);
    let dtack_m = b.fall(dtack);
    let lds_m = b.fall(lds);
    let ldtack_m = b.fall(ldtack);

    b.arc_tt(dsr_p, lds_p);
    b.arc_tt(lds_p, ldtack_p);
    b.arc_tt(ldtack_p, d_p);
    b.arc_tt(d_p, dtack_p);
    b.arc_tt(dtack_p, dsr_m);
    b.arc_tt(dsr_m, d_m);
    b.arc_tt(d_m, dtack_m);
    b.arc_tt(d_m, lds_m);
    b.arc_tt(lds_m, ldtack_m);
    // lds may rise again only after ldtack-, but dsr+ needs only dtack-:
    // the next request can arrive while lds/ldtack are still falling, which
    // creates the classic CSC conflict.
    let ready = b.arc_tt(ldtack_m, lds_p);
    b.mark(ready);
    let dtack_cycle = b.arc_tt(dtack_m, dsr_p);
    b.mark(dtack_cycle);
    b.initial_all_zero();
    b.must_build()
}

/// The VME bus read controller with the classic CSC resolution signal
/// `csc0` inserted (`csc0+` before `d+`, `csc0-` after `lds-` completes the
/// release phase), which disambiguates the conflicting states.
pub fn vme_read_csc() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("vme-read-csc");
    let dsr = b.input("dsr");
    let ldtack = b.input("ldtack");
    let lds = b.output("lds");
    let d = b.output("d");
    let dtack = b.output("dtack");
    let csc = b.internal("csc0");

    let dsr_p = b.rise(dsr);
    let lds_p = b.rise(lds);
    let ldtack_p = b.rise(ldtack);
    let csc_p = b.rise(csc);
    let d_p = b.rise(d);
    let dtack_p = b.rise(dtack);
    let dsr_m = b.fall(dsr);
    let d_m = b.fall(d);
    let dtack_m = b.fall(dtack);
    let lds_m = b.fall(lds);
    let ldtack_m = b.fall(ldtack);
    let csc_m = b.fall(csc);

    // csc0 rises with the request phase and falls before the data path
    // releases, so the two formerly-confused code regions differ in csc0.
    b.arc_tt(dsr_p, csc_p);
    b.arc_tt(csc_p, lds_p);
    b.arc_tt(lds_p, ldtack_p);
    b.arc_tt(ldtack_p, d_p);
    b.arc_tt(d_p, dtack_p);
    b.arc_tt(dtack_p, dsr_m);
    b.arc_tt(dsr_m, csc_m);
    b.arc_tt(csc_m, d_m);
    b.arc_tt(d_m, dtack_m);
    b.arc_tt(d_m, lds_m);
    b.arc_tt(lds_m, ldtack_m);
    let ready = b.arc_tt(ldtack_m, csc_p);
    b.mark(ready);
    let dtack_cycle = b.arc_tt(dtack_m, dsr_p);
    b.mark(dtack_cycle);
    b.initial_all_zero();
    b.must_build()
}

/// A two-client request multiplexer (allocator with environment choice):
/// either client may raise its request (`r1`/`r2`, inputs, mutually
/// exclusive by protocol); the matching grant (`g1`/`g2`, outputs) answers
/// with a four-phase handshake. The differing request bits keep the state
/// coding complete.
pub fn request_mux() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("request-mux");
    let r1 = b.input("r1");
    let r2 = b.input("r2");
    let g1 = b.output("g1");
    let g2 = b.output("g2");

    let free = b.place("free");
    for (r, g) in [(r1, g1), (r2, g2)] {
        let r_p = b.rise(r);
        let g_p = b.rise(g);
        let r_m = b.fall(r);
        let g_m = b.fall(g);
        b.arc_pt(free, r_p);
        b.arc_tt(r_p, g_p);
        b.arc_tt(g_p, r_m);
        b.arc_tt(r_m, g_m);
        b.arc_tp(g_m, free);
    }
    b.mark(free);
    b.initial_all_zero();
    b.must_build()
}

/// A concurrent fork/join controller: request fans out to two independent
/// handshakes that proceed concurrently; the acknowledge joins them.
pub fn concurrent_fork_join() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("concurrent-fork-join");
    let req = b.input("req");
    let r1 = b.output("r1");
    let r2 = b.output("r2");
    let a1 = b.input("a1");
    let a2 = b.input("a2");
    let ack = b.output("ack");

    let req_p = b.rise(req);
    let r1_p = b.rise(r1);
    let r2_p = b.rise(r2);
    let a1_p = b.rise(a1);
    let a2_p = b.rise(a2);
    let ack_p = b.rise(ack);
    let req_m = b.fall(req);
    let r1_m = b.fall(r1);
    let r2_m = b.fall(r2);
    let a1_m = b.fall(a1);
    let a2_m = b.fall(a2);
    let ack_m = b.fall(ack);

    b.arc_tt(req_p, r1_p);
    b.arc_tt(req_p, r2_p);
    b.arc_tt(r1_p, a1_p);
    b.arc_tt(r2_p, a2_p);
    b.arc_tt(a1_p, ack_p);
    b.arc_tt(a2_p, ack_p);
    b.arc_tt(ack_p, req_m);
    b.arc_tt(req_m, r1_m);
    b.arc_tt(req_m, r2_m);
    b.arc_tt(r1_m, a1_m);
    b.arc_tt(r2_m, a2_m);
    b.arc_tt(a1_m, ack_m);
    b.arc_tt(a2_m, ack_m);
    let back = b.arc_tt(ack_m, req_p);
    b.mark(back);
    b.initial_all_zero();
    b.must_build()
}

/// The classic speed-independent toggle: outputs `a` and `b` change on
/// alternate pulses of the input `x` (`x+ a+ x- b+ x+ a- x- b-`), with the
/// phase encoded by `a ⊕ b` — every one of the 8 states has a distinct
/// code.
pub fn toggle() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("toggle");
    let x = b.input("x");
    let qa = b.output("a");
    let qb = b.output("b");

    let x_p1 = b.rise(x);
    let a_p = b.rise(qa);
    let x_m1 = b.fall(x);
    let b_p = b.rise(qb);
    let x_p2 = b.rise(x);
    let a_m = b.fall(qa);
    let x_m2 = b.fall(x);
    let b_m = b.fall(qb);

    b.arc_tt(x_p1, a_p);
    b.arc_tt(a_p, x_m1);
    b.arc_tt(x_m1, b_p);
    b.arc_tt(b_p, x_p2);
    b.arc_tt(x_p2, a_m);
    b.arc_tt(a_m, x_m2);
    b.arc_tt(x_m2, b_m);
    let back = b.arc_tt(b_m, x_p1);
    b.mark(back);
    b.initial_all_zero();
    b.must_build()
}

/// A bus master read controller in the style of the classic `master-read`
/// benchmark: a request forks into an address handshake and a data
/// handshake running concurrently, each two stages deep, joined by the
/// acknowledge; ten signals in total.
pub fn master_read() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("master-read");
    let req = b.input("req");
    let ack = b.output("ack");
    // Address path: ar (output) / aa (input), then latch al (output) / ad (input).
    let ar = b.output("ar");
    let aa = b.input("aa");
    let al = b.output("al");
    let ad = b.input("ad");
    // Data path: dr (output) / da (input), then strobe ds (output) / dd (input).
    let dr = b.output("dr");
    let da = b.input("da");
    let ds = b.output("ds");
    let dd = b.input("dd");

    let req_p = b.rise(req);
    let ack_p = b.rise(ack);
    let req_m = b.fall(req);
    let ack_m = b.fall(ack);

    // Rising phase of each path runs before the acknowledge (signals are
    // held high across the join, so every join state is uniquely coded);
    // the falling phase runs after the request is withdrawn.
    let chain_rise = |b: &mut StgBuilder, sigs: [crate::signal::SignalId; 4]| {
        let ts: Vec<_> = sigs.iter().map(|&s| b.rise(s)).collect();
        for w in ts.windows(2) {
            b.arc_tt(w[0], w[1]);
        }
        (ts[0], ts[3])
    };
    let chain_fall = |b: &mut StgBuilder, sigs: [crate::signal::SignalId; 4]| {
        let ts: Vec<_> = sigs.iter().map(|&s| b.fall(s)).collect();
        for w in ts.windows(2) {
            b.arc_tt(w[0], w[1]);
        }
        (ts[0], ts[3])
    };
    let (ar_p, ad_p) = chain_rise(&mut b, [ar, aa, al, ad]);
    let (dr_p, dd_p) = chain_rise(&mut b, [dr, da, ds, dd]);
    let (ar_m, ad_m) = chain_fall(&mut b, [ar, aa, al, ad]);
    let (dr_m, dd_m) = chain_fall(&mut b, [dr, da, ds, dd]);

    b.arc_tt(req_p, ar_p);
    b.arc_tt(req_p, dr_p);
    b.arc_tt(ad_p, ack_p);
    b.arc_tt(dd_p, ack_p);
    b.arc_tt(ack_p, req_m);
    b.arc_tt(req_m, ar_m);
    b.arc_tt(req_m, dr_m);
    b.arc_tt(ad_m, ack_m);
    b.arc_tt(dd_m, ack_m);
    let back = b.arc_tt(ack_m, req_p);
    b.mark(back);
    b.initial_all_zero();
    b.must_build()
}

/// A choice-then-merge controller in the style of `alloc-outbound`: the
/// environment picks one of two request lines; both are served by the same
/// shared resource handshake before the per-line grant answers.
pub fn choice_merge() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("choice-merge");
    let r1 = b.input("r1");
    let r2 = b.input("r2");
    let g1 = b.output("g1");
    let g2 = b.output("g2");
    let sr = b.output("sr"); // shared resource request
    let sa = b.input("sa"); // shared resource acknowledge

    let free = b.place("free");
    for (r, g) in [(r1, g1), (r2, g2)] {
        let r_p = b.rise(r);
        let sr_p = b.rise(sr);
        let sa_p = b.rise(sa);
        let g_p = b.rise(g);
        let r_m = b.fall(r);
        let sr_m = b.fall(sr);
        let sa_m = b.fall(sa);
        let g_m = b.fall(g);
        b.arc_pt(free, r_p);
        b.arc_tt(r_p, sr_p);
        b.arc_tt(sr_p, sa_p);
        b.arc_tt(sa_p, g_p);
        b.arc_tt(g_p, r_m);
        b.arc_tt(r_m, sr_m);
        b.arc_tt(sr_m, sa_m);
        b.arc_tt(sa_m, g_m);
        b.arc_tp(g_m, free);
    }
    b.mark(free);
    b.initial_all_zero();
    b.must_build()
}

/// A two-stage FIFO send controller in the style of `sbuf-send-ctl`: the
/// sender request is buffered through an internal latch signal before the
/// line request fires, with the acknowledge path overlapping the recovery.
pub fn fifo_send() -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("fifo-send");
    let req = b.input("req");
    let lt = b.internal("lt");
    let line = b.output("line");
    let lack = b.input("lack");
    let ack = b.output("ack");

    let req_p = b.rise(req);
    let lt_p = b.rise(lt);
    let line_p = b.rise(line);
    let lack_p = b.rise(lack);
    let ack_p = b.rise(ack);
    let req_m = b.fall(req);
    let lt_m = b.fall(lt);
    let line_m = b.fall(line);
    let lack_m = b.fall(lack);
    let ack_m = b.fall(ack);

    b.arc_tt(req_p, lt_p);
    b.arc_tt(lt_p, line_p);
    b.arc_tt(line_p, lack_p);
    b.arc_tt(lack_p, ack_p);
    b.arc_tt(ack_p, req_m);
    b.arc_tt(req_m, lt_m);
    b.arc_tt(lt_m, line_m);
    b.arc_tt(line_m, lack_m);
    b.arc_tt(lack_m, ack_m);
    let back = b.arc_tt(ack_m, req_p);
    b.mark(back);
    b.initial_all_zero();
    b.must_build()
}

/// All suite entries that are expected to satisfy CSC (and therefore be
/// synthesisable without specification changes), paired for the Table 1 run.
pub fn synthesisable() -> Vec<Stg> {
    use crate::generators::*;
    vec![
        paper_fig1(),
        paper_fig4ab(),
        paper_fig4c(),
        vme_read_csc(),
        request_mux(),
        concurrent_fork_join(),
        toggle(),
        master_read(),
        choice_merge(),
        fifo_send(),
        parallelizer(4),
        muller_pipeline(2),
        muller_pipeline(4),
        muller_pipeline(6),
        counterflow_pipeline(2),
        counterflow_pipeline(4),
        sequencer(6),
        sequencer(10),
        independent_cycles(4),
        independent_cycles(8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_petri::ReachabilityGraph;

    #[test]
    fn all_entries_are_safe_and_deadlock_free() {
        for stg in synthesisable() {
            let rg = ReachabilityGraph::explore(stg.net(), 5_000_000)
                .unwrap_or_else(|e| panic!("{} not safe: {e}", stg.name()));
            assert!(rg.deadlocks().is_empty(), "{} has deadlocks", stg.name());
        }
    }

    #[test]
    fn fig1_state_graph_matches_paper() {
        let stg = paper_fig1();
        let rg = ReachabilityGraph::explore(stg.net(), 1000).expect("safe");
        // Figure 1(c) shows 9 states (p1, p2p3, p4, p3p5, p2p6p8, p5p6p8,
        // p7p8, p9, and back to p1 — the SG has 8 distinct markings plus the
        // initial one revisited).
        assert_eq!(rg.len(), 8);
    }

    #[test]
    fn vme_variants_are_safe() {
        for stg in [vme_read_no_csc(), vme_read_csc()] {
            let rg = ReachabilityGraph::explore(stg.net(), 10_000)
                .unwrap_or_else(|e| panic!("{} not safe: {e}", stg.name()));
            assert!(rg.deadlocks().is_empty());
        }
    }

    #[test]
    fn suite_has_expected_size() {
        assert!(synthesisable().len() >= 15);
    }

    #[test]
    fn fig4ab_branches_are_concurrent() {
        let stg = paper_fig4ab();
        let rg = ReachabilityGraph::explore(stg.net(), 100_000).expect("safe");
        // Three independent 2-step branches → at least 3^2 interleavings
        // plus the sequential reset tail.
        assert!(rg.len() > 20, "got {}", rg.len());
    }
}
