//! Graphviz DOT export for STGs, with signal-change labels on transitions.

use std::fmt::Write as _;

use crate::model::Stg;
use crate::signal::SignalKind;

/// Renders `stg` in Graphviz DOT syntax. Transitions show their signal
/// labels (`a+`, `b-`); input-signal transitions are drawn with dashed
/// borders. Implicit places (one producer, one consumer, auto-generated
/// name) are drawn as small unlabelled dots.
///
/// # Examples
///
/// ```
/// use si_stg::{generators::muller_pipeline, stg_to_dot};
///
/// let dot = stg_to_dot(&muller_pipeline(1));
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("c1+"));
/// ```
pub fn stg_to_dot(stg: &Stg) -> String {
    let net = stg.net();
    let mut out = String::new();
    let _ = writeln!(out, "digraph stg {{");
    let _ = writeln!(out, "  label=\"{}\";", stg.name());
    for t in net.transitions() {
        let style = match stg.label(t).map(|l| stg.signal_kind(l.signal)) {
            Some(SignalKind::Input) => ", style=dashed",
            Some(_) => "",
            None => ", style=dotted",
        };
        let _ = writeln!(
            out,
            "  T{} [label=\"{}\", shape=box{}];",
            t.0,
            stg.transition_label_string(t),
            style
        );
    }
    for p in net.places() {
        let implicit = net.place_preset(p).len() == 1 && net.place_postset(p).len() == 1;
        let marked = net.initial_marking().contains(p);
        if implicit {
            let fill = if marked { "black" } else { "white" };
            let _ = writeln!(
                out,
                "  P{} [label=\"\", shape=circle, width=0.15, style=filled, fillcolor={}];",
                p.0, fill
            );
        } else {
            let fill = if marked {
                ", style=filled, fillcolor=gray80"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  P{} [label=\"{}\", shape=circle{}];",
                p.0,
                net.place_name(p),
                fill
            );
        }
    }
    for t in net.transitions() {
        for &p in net.preset(t) {
            let _ = writeln!(out, "  P{} -> T{};", p.0, t.0);
        }
        for &p in net.postset(t) {
            let _ = writeln!(out, "  T{} -> P{};", t.0, p.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::sequencer;

    #[test]
    fn dot_contains_labels_and_styles() {
        let stg = sequencer(2);
        let dot = stg_to_dot(&stg);
        assert!(dot.contains("s0+"));
        assert!(dot.contains("s1-"));
        // s0 is an input, so its transitions are dashed.
        assert!(dot.contains("style=dashed"));
        // The single marked implicit place is a filled dot.
        assert!(dot.contains("fillcolor=black"));
        assert!(dot.ends_with("}\n"));
    }
}
