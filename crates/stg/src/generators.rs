//! Parameterised STG generators for the scalable experiments (Figure 6) and
//! stress tests.
//!
//! * [`muller_pipeline`] — the paper's Figure 6 workload: an `n`-stage Muller
//!   pipeline whose state graph grows exponentially with `n` while its
//!   unfolding segment grows linearly.
//! * [`counterflow_pipeline`] — a synthetic stand-in for the Counterflow
//!   Pipeline Processor control (Yakovlev, TR-522): two pipelines flowing in
//!   opposite directions with per-stage alternation. `counterflow_pipeline(15)`
//!   has the paper's 34 signals.
//! * [`independent_cycles`] — `k` fully concurrent signal loops: the extreme
//!   state-explosion case (`2^k` states, linear unfolding).
//! * [`sequencer`] — a purely sequential ring of `n` signals: the
//!   no-concurrency base case.
//! * [`dining_philosophers`] — the deadlock-prone ring: the workload the
//!   liveness diagnostics (`SI-W011`, reachable deadlocks) are aimed at.

use crate::binary::BinaryCode;
use crate::model::{Stg, StgBuilder};
use crate::signal::SignalId;

/// Builds an `n`-stage Muller pipeline STG.
///
/// Signals: `r` (left request, input), `c1 … cn` (C-element stage outputs),
/// `a` (right acknowledge, input) — `n + 2` signals in total. Every adjacent
/// signal pair `(sᵢ, sᵢ₊₁)` is connected by the four-phase cycle
/// `sᵢ+ → sᵢ₊₁+ → sᵢ− → sᵢ₊₁− → sᵢ+`, which yields the classic C-element
/// behaviour `cᵢ = C(cᵢ₋₁, ¬cᵢ₊₁)`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use si_stg::generators::muller_pipeline;
///
/// let stg = muller_pipeline(3);
/// assert_eq!(stg.signal_count(), 5);
/// assert_eq!(stg.net().transition_count(), 10);
/// ```
pub fn muller_pipeline(n: usize) -> Stg {
    assert!(n > 0, "pipeline needs at least one stage");
    let mut b = StgBuilder::new();
    b.set_name(format!("muller-pipeline-{n}"));
    let mut sigs: Vec<SignalId> = Vec::with_capacity(n + 2);
    sigs.push(b.input("r"));
    for i in 1..=n {
        sigs.push(b.output(format!("c{i}")));
    }
    sigs.push(b.input("a"));

    let rises: Vec<_> = sigs.iter().map(|&s| b.rise(s)).collect();
    let falls: Vec<_> = sigs.iter().map(|&s| b.fall(s)).collect();

    for i in 0..sigs.len() - 1 {
        // sᵢ+ → sᵢ₊₁+ → sᵢ− → sᵢ₊₁− → sᵢ+ (last place marked: pipeline empty)
        b.arc_tt(rises[i], rises[i + 1]);
        b.arc_tt(rises[i + 1], falls[i]);
        b.arc_tt(falls[i], falls[i + 1]);
        let idle = b.arc_tt(falls[i + 1], rises[i]);
        b.mark(idle);
    }
    b.initial_all_zero();
    b.must_build()
}

/// Builds a synthetic counterflow-pipeline control STG with `k` stages.
///
/// Two Muller pipelines flow in opposite directions: the *down* stream
/// `x0 → x1 → … → xk → xa` and the *up* stream `y0 → y1 → … → yk → ya`
/// (indexed so that stage `i` of the up stream is physically stage `k - i`).
/// At every physical stage the two streams alternate — a down transfer must
/// complete before the next up transfer and vice versa — which models the
/// counterflow synchronisation rule without arbitration.
///
/// Signal count is `2k + 4`; `counterflow_pipeline(15)` reproduces the
/// 34-signal configuration referenced in the paper's Figure 6.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn counterflow_pipeline(k: usize) -> Stg {
    assert!(k > 0, "pipeline needs at least one stage");
    let mut b = StgBuilder::new();
    b.set_name(format!("counterflow-pipeline-{k}"));

    let mut down: Vec<SignalId> = Vec::with_capacity(k + 2);
    down.push(b.input("x0"));
    for i in 1..=k {
        down.push(b.output(format!("x{i}")));
    }
    down.push(b.input("xa"));

    let mut up: Vec<SignalId> = Vec::with_capacity(k + 2);
    up.push(b.input("y0"));
    for i in 1..=k {
        up.push(b.output(format!("y{i}")));
    }
    up.push(b.input("ya"));

    let d_rise: Vec<_> = down.iter().map(|&s| b.rise(s)).collect();
    let d_fall: Vec<_> = down.iter().map(|&s| b.fall(s)).collect();
    let u_rise: Vec<_> = up.iter().map(|&s| b.rise(s)).collect();
    let u_fall: Vec<_> = up.iter().map(|&s| b.fall(s)).collect();

    for i in 0..down.len() - 1 {
        b.arc_tt(d_rise[i], d_rise[i + 1]);
        b.arc_tt(d_rise[i + 1], d_fall[i]);
        b.arc_tt(d_fall[i], d_fall[i + 1]);
        let idle = b.arc_tt(d_fall[i + 1], d_rise[i]);
        b.mark(idle);
    }
    for i in 0..up.len() - 1 {
        b.arc_tt(u_rise[i], u_rise[i + 1]);
        b.arc_tt(u_rise[i + 1], u_fall[i]);
        b.arc_tt(u_fall[i], u_fall[i + 1]);
        let idle = b.arc_tt(u_fall[i + 1], u_rise[i]);
        b.mark(idle);
    }

    // Per-stage counterflow synchronisation: the down and up transfers
    // through one physical stage are locked into a full four-phase cycle
    // `xᵢ+ → yⱼ+ → xᵢ− → yⱼ− → xᵢ+` — the same C-element-style coupling as
    // the pipeline pairs. Every blocked phase is visible in the signal
    // codes, which keeps the specification CSC-clean (a bare alternation
    // token would not be).
    for i in 1..=k {
        let j = k + 1 - i; // up-stream index passing the same physical stage
        b.arc_tt(d_rise[i], u_rise[j]);
        b.arc_tt(u_rise[j], d_fall[i]);
        b.arc_tt(d_fall[i], u_fall[j]);
        let idle = b.arc_tt(u_fall[j], d_rise[i]);
        b.mark(idle);
    }

    b.initial_all_zero();
    b.must_build()
}

/// Builds an `n`-way paralleliser in the style of the classic `par_4`
/// benchmark: one request fans out to `n` concurrent four-phase handshake
/// branches (`rᵢ` output / `aᵢ` input) joined by a single acknowledge.
/// `parallelizer(4)` has the 14 signals of the paper's `par_4.csc` row.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use si_stg::generators::parallelizer;
///
/// assert_eq!(parallelizer(4).signal_count(), 14);
/// ```
pub fn parallelizer(n: usize) -> Stg {
    assert!(n > 0, "need at least one branch");
    let mut b = StgBuilder::new();
    b.set_name(format!("parallelizer-{n}"));
    let req = b.input("req");
    let ack = b.output("ack");
    // Per branch: an outgoing request, the branch acknowledge, and a local
    // done strobe, giving 3 signals per branch + req/ack.
    let req_p = b.rise(req);
    let ack_p = b.rise(ack);
    let req_m = b.fall(req);
    let ack_m = b.fall(ack);
    for i in 0..n {
        let r = b.output(format!("r{i}"));
        let a = b.input(format!("a{i}"));
        let d = b.output(format!("d{i}"));
        let r_p = b.rise(r);
        let a_p = b.rise(a);
        let d_p = b.rise(d);
        let r_m = b.fall(r);
        let a_m = b.fall(a);
        let d_m = b.fall(d);
        // Rising phase before the join; falling phase after the release.
        b.arc_tt(req_p, r_p);
        b.arc_tt(r_p, a_p);
        b.arc_tt(a_p, d_p);
        b.arc_tt(d_p, ack_p);
        b.arc_tt(req_m, r_m);
        b.arc_tt(r_m, a_m);
        b.arc_tt(a_m, d_m);
        b.arc_tt(d_m, ack_m);
    }
    b.arc_tt(ack_p, req_m);
    let back = b.arc_tt(ack_m, req_p);
    b.mark(back);
    b.initial_all_zero();
    b.must_build()
}

/// Builds an `n`-stage wide-arbitration pipeline: the adversarial workload
/// for *static* BDD variable orders.
///
/// Behaviourally this is a Muller pipeline — `n + 2` signals coupled by the
/// four-phase cycle `sᵢ+ → sᵢ₊₁+ → sᵢ− → sᵢ₊₁− → sᵢ+` — with two twists
/// that together defeat any adjacency-seeded order:
///
/// * the pipeline chain runs over a **riffled** signal sequence
///   (`x0, xh, x1, xh+1, …` for `h = (n + 2 + 1) / 2`), so signals that
///   interact sit maximally far apart in declaration order;
/// * every rise transition samples a shared, always-marked **arbitration
///   bus** place (a self-loop arc pair), which turns the signal-adjacency
///   graph into a near-clique: a breadth-first bandwidth pass sees every
///   signal adjacent to every other and falls back to declaration order —
///   exactly the riffle's worst case.
///
/// The reachable set is tiny under a chain-aware order (the pipeline's
/// diagram is near-linear) but exponential under the declaration order, so
/// this family needs dynamic reordering: `--reorder off` exhausts any
/// reasonable node budget where `sift`/`auto` sail through. The bus never
/// blocks (it is consumed and reproduced by the same firing), so state
/// counts and gate equations match `muller_pipeline(n)` modulo signal
/// naming — chain-end signals are inputs, the rest are C-element outputs.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use si_stg::generators::wide_arbiter;
///
/// let stg = wide_arbiter(3);
/// assert_eq!(stg.signal_count(), 5);
/// // One extra shared place (the bus) on top of the pipeline structure.
/// assert_eq!(stg.net().place_count(), 4 * 4 + 1);
/// ```
pub fn wide_arbiter(n: usize) -> Stg {
    assert!(n > 0, "arbiter needs at least one stage");
    let k = n + 2;
    let h = k.div_ceil(2);
    // Riffle: chain position i holds declared signal h·(i mod 2) + i/2.
    let seq: Vec<usize> = (0..k)
        .map(|i| if i % 2 == 0 { i / 2 } else { h + i / 2 })
        .collect();
    let mut b = StgBuilder::new();
    b.set_name(format!("wide-arbiter-{n}"));
    let ends = [seq[0], seq[k - 1]];
    let sigs: Vec<SignalId> = (0..k)
        .map(|i| {
            if ends.contains(&i) {
                b.input(format!("x{i}"))
            } else {
                b.output(format!("x{i}"))
            }
        })
        .collect();
    let rises: Vec<_> = sigs.iter().map(|&s| b.rise(s)).collect();
    let falls: Vec<_> = sigs.iter().map(|&s| b.fall(s)).collect();

    for w in seq.windows(2) {
        let (s, t) = (w[0], w[1]);
        b.arc_tt(rises[s], rises[t]);
        b.arc_tt(rises[t], falls[s]);
        b.arc_tt(falls[s], falls[t]);
        let idle = b.arc_tt(falls[t], rises[s]);
        b.mark(idle);
    }

    // The shared arbitration bus: always marked, sampled (consumed and
    // reproduced atomically) by every rise. Behaviourally inert; its fan-in
    // and fan-out make every signal pair adjacent.
    let bus = b.place("bus");
    b.mark(bus);
    for &r in &rises {
        b.arc_pt(bus, r);
        b.arc_tp(r, bus);
    }

    b.initial_all_zero();
    b.must_build()
}

/// Builds an `n`-station self-timed token ring: the unfolding flow's
/// showcase workload (high concurrency, small prefix).
///
/// Stations are C-element stages `g0 … g(n−1)` closed into a ring, every
/// adjacent pair `(gᵢ, gᵢ₊₁)` coupled by the same full four-phase cycle as
/// [`muller_pipeline`]'s stages: `gᵢ+ → gᵢ₊₁+ → gᵢ− → gᵢ₊₁− → gᵢ+`. Each
/// edge's four places biject with the values of its signal pair —
/// `(1,0), (1,1), (0,1), (0,0)` — so the reachable marking is a function of
/// the binary code and the specification is CSC-clean by construction.
/// `⌊n/3⌋` spaced tokens (high stations) circulate: a station rises when its
/// predecessor is high and its successor low, and falls when its
/// predecessor is low and its successor high, so every token needs a bubble
/// ahead of it and the token count is invariant.
///
/// The state graph counts every interleaving of the token positions —
/// exponential in `n` — while the unfolding segment stays polynomial: this
/// is the structure where the unfolding flow should win outright.
///
/// All stations are outputs (the ring is autonomous, like
/// [`independent_cycles`]), and unlike that family the ring is connected,
/// so the spec lints clean.
///
/// # Panics
///
/// Panics if `n < 3` (smaller rings cannot hold a token and a bubble).
///
/// # Examples
///
/// ```
/// use si_stg::generators::token_ring;
///
/// let stg = token_ring(8);
/// assert_eq!(stg.signal_count(), 8);
/// assert_eq!(stg.net().place_count(), 4 * 8);
/// assert_eq!(stg.initial_code().map(ToString::to_string).as_deref(), Some("10010000"));
/// ```
pub fn token_ring(n: usize) -> Stg {
    assert!(n >= 3, "ring needs at least three stations");
    let mut b = StgBuilder::new();
    b.set_name(format!("token-ring-{n}"));
    let sigs: Vec<SignalId> = (0..n).map(|i| b.output(format!("g{i}"))).collect();
    let rises: Vec<_> = sigs.iter().map(|&s| b.rise(s)).collect();
    let falls: Vec<_> = sigs.iter().map(|&s| b.fall(s)).collect();

    // Tokens at every third station, never closer than two stations to the
    // seam, so blocks stay singletons under cyclic adjacency.
    let high = |i: usize| i.is_multiple_of(3) && i + 3 <= n;
    let mut code = BinaryCode::zeros(n);
    for (i, &s) in sigs.iter().enumerate() {
        if high(i) {
            code.set(s, true);
        }
    }

    for i in 0..n {
        let j = (i + 1) % n;
        let a = b.arc_tt(rises[i], rises[j]);
        let bb = b.arc_tt(rises[j], falls[i]);
        let c = b.arc_tt(falls[i], falls[j]);
        let d = b.arc_tt(falls[j], rises[i]);
        // Exactly one of the edge's four places is marked: the one encoding
        // the initial values of (gᵢ, gⱼ).
        b.mark(match (high(i), high(j)) {
            (true, false) => a,
            (true, true) => bb,
            (false, true) => c,
            (false, false) => d,
        });
    }
    b.set_initial_code(code);
    b.must_build()
}

/// Builds `k` fully independent two-transition signal loops (`aᵢ+ → aᵢ− →
/// aᵢ+`). All loops are concurrent, so the state graph has `2^k` states while
/// the unfolding segment stays linear in `k`.
///
/// All signals are outputs (each loop is a self-oscillator).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn independent_cycles(k: usize) -> Stg {
    assert!(k > 0, "need at least one cycle");
    let mut b = StgBuilder::new();
    b.set_name(format!("independent-cycles-{k}"));
    for i in 0..k {
        let s = b.output(format!("a{i}"));
        let plus = b.rise(s);
        let minus = b.fall(s);
        b.arc_tt(plus, minus);
        let idle = b.arc_tt(minus, plus);
        b.mark(idle);
    }
    b.initial_all_zero();
    b.must_build()
}

/// Builds the classic `n`-philosopher dining ring as an STG: the
/// deadlock-prone workload for the liveness analyses.
///
/// Philosopher `i` cycles `think → has-left → eat → done → think`, picking
/// up the left fork `fᵢ` on `lᵢ+`, the right fork `fᵢ₊₁` on `rᵢ+`, and
/// releasing them on `lᵢ−`/`rᵢ−`. All forks start on the table and all
/// philosophers start thinking, so the net is 1-safe with unary covers —
/// but the round where everybody grabs their left fork reaches a total
/// reachable deadlock. Structurally, the siphon collecting the forks with
/// the eat/done places contains no initially marked trap, so the
/// siphon–trap property fails: `--lint` reports `SI-W011` (and no
/// deadlock-freedom certificate), making this the canonical fixture for
/// the liveness diagnostics.
///
/// Signals `lᵢ`, `rᵢ` are outputs (the ring is autonomous).
///
/// # Panics
///
/// Panics if `n < 2` (a single philosopher owns both forks).
///
/// # Examples
///
/// ```
/// use si_stg::generators::dining_philosophers;
///
/// let stg = dining_philosophers(4);
/// assert_eq!(stg.signal_count(), 8);
/// assert_eq!(stg.net().place_count(), 5 * 4);
/// ```
pub fn dining_philosophers(n: usize) -> Stg {
    assert!(n >= 2, "the ring needs at least two philosophers");
    let mut b = StgBuilder::new();
    b.set_name(format!("dining-philosophers-{n}"));
    let left: Vec<SignalId> = (0..n).map(|i| b.output(format!("l{i}"))).collect();
    let right: Vec<SignalId> = (0..n).map(|i| b.output(format!("r{i}"))).collect();
    let forks: Vec<_> = (0..n)
        .map(|i| {
            let f = b.place(format!("f{i}"));
            b.mark(f);
            f
        })
        .collect();
    for i in 0..n {
        let think = b.place(format!("think{i}"));
        let hasl = b.place(format!("hasl{i}"));
        let eat = b.place(format!("eat{i}"));
        let done = b.place(format!("done{i}"));
        b.mark(think);
        let take_l = b.rise(left[i]);
        let take_r = b.rise(right[i]);
        let drop_l = b.fall(left[i]);
        let drop_r = b.fall(right[i]);
        // take left: think + left fork → has-left
        b.arc_pt(think, take_l);
        b.arc_pt(forks[i], take_l);
        b.arc_tp(take_l, hasl);
        // take right: has-left + right fork → eat
        b.arc_pt(hasl, take_r);
        b.arc_pt(forks[(i + 1) % n], take_r);
        b.arc_tp(take_r, eat);
        // release left: eat → done (left fork returns)
        b.arc_pt(eat, drop_l);
        b.arc_tp(drop_l, done);
        b.arc_tp(drop_l, forks[i]);
        // release right: done → think (right fork returns)
        b.arc_pt(done, drop_r);
        b.arc_tp(drop_r, think);
        b.arc_tp(drop_r, forks[(i + 1) % n]);
    }
    b.initial_all_zero();
    b.must_build()
}

/// Builds a purely sequential ring over `n` signals: `s0+ → s1+ → … →
/// s(n−1)+ → s0− → … → s(n−1)− → s0+`. The state graph is linear in `n`
/// (2n states), as is the unfolding.
///
/// Even-indexed signals are inputs, odd-indexed outputs, so the STG has both
/// kinds.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sequencer(n: usize) -> Stg {
    assert!(n > 0, "need at least one signal");
    let mut b = StgBuilder::new();
    b.set_name(format!("sequencer-{n}"));
    let sigs: Vec<SignalId> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                b.input(format!("s{i}"))
            } else {
                b.output(format!("s{i}"))
            }
        })
        .collect();
    let rises: Vec<_> = sigs.iter().map(|&s| b.rise(s)).collect();
    let falls: Vec<_> = sigs.iter().map(|&s| b.fall(s)).collect();
    let mut order = Vec::new();
    order.extend(rises);
    order.extend(falls);
    for w in order.windows(2) {
        b.arc_tt(w[0], w[1]);
    }
    let back = b.arc_tt(order[order.len() - 1], order[0]);
    b.mark(back);
    b.initial_all_zero();
    b.must_build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_petri::ReachabilityGraph;

    #[test]
    fn muller_pipeline_shape() {
        for n in 1..=4 {
            let stg = muller_pipeline(n);
            assert_eq!(stg.signal_count(), n + 2);
            assert_eq!(stg.net().transition_count(), 2 * (n + 2));
            assert_eq!(stg.net().place_count(), 4 * (n + 1));
            assert_eq!(stg.net().initial_marking().len(), n + 1);
            stg.validate().expect("valid");
        }
    }

    #[test]
    fn muller_pipeline_is_safe_and_live() {
        let stg = muller_pipeline(3);
        let rg = ReachabilityGraph::explore(stg.net(), 100_000).expect("safe");
        assert!(rg.deadlocks().is_empty());
        // Exponential-ish growth: strictly more states than the sequential
        // lower bound.
        assert!(rg.len() > 2 * stg.signal_count());
    }

    #[test]
    fn muller_pipeline_state_growth_is_exponential() {
        let s3 = ReachabilityGraph::explore(muller_pipeline(3).net(), 1_000_000)
            .expect("safe")
            .len();
        let s6 = ReachabilityGraph::explore(muller_pipeline(6).net(), 1_000_000)
            .expect("safe")
            .len();
        // Tripling the stages should far more than double the states.
        assert!(s6 > 4 * s3, "s3={s3} s6={s6}");
    }

    #[test]
    fn counterflow_pipeline_shape() {
        let stg = counterflow_pipeline(15);
        assert_eq!(stg.signal_count(), 34);
        stg.validate().expect("valid");
    }

    #[test]
    fn counterflow_pipeline_safe_no_deadlock_small() {
        for k in 1..=3 {
            let stg = counterflow_pipeline(k);
            let rg = ReachabilityGraph::explore(stg.net(), 2_000_000).expect("safe");
            assert!(rg.deadlocks().is_empty(), "deadlock at k={k}");
        }
    }

    #[test]
    fn parallelizer_shape_and_safety() {
        let stg = parallelizer(4);
        assert_eq!(stg.signal_count(), 14);
        stg.validate().expect("valid");
        let rg = ReachabilityGraph::explore(stg.net(), 1_000_000).expect("safe");
        assert!(rg.deadlocks().is_empty());
        // Four independent 3-step branches in each phase.
        assert!(rg.len() > 100);
    }

    #[test]
    fn wide_arbiter_matches_muller_pipeline_behaviour() {
        for n in [1, 3, 6] {
            let stg = wide_arbiter(n);
            assert_eq!(stg.signal_count(), n + 2);
            stg.validate().expect("valid");
            let rg = ReachabilityGraph::explore(stg.net(), 100_000).expect("safe");
            assert!(rg.deadlocks().is_empty(), "deadlock at n={n}");
            let muller = ReachabilityGraph::explore(muller_pipeline(n).net(), 100_000)
                .expect("safe")
                .len();
            assert_eq!(rg.len(), muller, "bus must be behaviourally inert");
        }
    }

    #[test]
    fn wide_arbiter_chain_is_riffled() {
        // Declaration neighbours must not be chain neighbours (that is the
        // point): no place may connect transitions of declaration-adjacent
        // signals once n is big enough for the riffle to spread them.
        let stg = wide_arbiter(6);
        let net = stg.net();
        for p in net.places() {
            for &tin in net.place_preset(p) {
                for &tout in net.place_postset(p) {
                    if let (Some(a), Some(b)) = (stg.label(tin), stg.label(tout)) {
                        let (i, j) = (a.signal.index(), b.signal.index());
                        if i != j && net.place_preset(p).len() == 1 {
                            assert!(
                                i.abs_diff(j) > 1,
                                "chain neighbours {i} and {j} are declaration-adjacent"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn token_ring_shape_and_safety() {
        for n in [3, 5, 8, 9] {
            let stg = token_ring(n);
            assert_eq!(stg.signal_count(), n);
            assert_eq!(stg.net().place_count(), 4 * n);
            assert_eq!(stg.net().transition_count(), 2 * n);
            // One marked place per edge.
            assert_eq!(stg.net().initial_marking().len(), n);
            stg.validate().expect("valid");
            let rg = ReachabilityGraph::explore(stg.net(), 1_000_000).expect("safe");
            assert!(rg.deadlocks().is_empty(), "deadlock at n={n}");
        }
    }

    #[test]
    fn token_ring_states_grow_exponentially_with_stations() {
        let count = |n: usize| {
            ReachabilityGraph::explore(token_ring(n).net(), 1_000_000)
                .expect("safe")
                .len()
        };
        let (s6, s9, s12) = (count(6), count(9), count(12));
        // Each extra token triple multiplies the interleavings.
        assert!(s9 > 3 * s6, "s6={s6} s9={s9}");
        assert!(s12 > 3 * s9, "s9={s9} s12={s12}");
    }

    #[test]
    #[should_panic(expected = "three stations")]
    fn tiny_token_ring_panics() {
        token_ring(2);
    }

    #[test]
    fn independent_cycles_state_count() {
        let stg = independent_cycles(10);
        let rg = ReachabilityGraph::explore(stg.net(), 10_000).expect("safe");
        assert_eq!(rg.len(), 1024);
        assert!(rg.deadlocks().is_empty());
    }

    #[test]
    fn dining_philosophers_is_safe_but_deadlocks() {
        for n in [2, 3, 4] {
            let stg = dining_philosophers(n);
            assert_eq!(stg.signal_count(), 2 * n);
            assert_eq!(stg.net().place_count(), 5 * n);
            assert_eq!(stg.net().transition_count(), 4 * n);
            stg.validate().expect("valid");
            // 1-safe, but the all-left-forks round is a reachable total
            // deadlock — the exact behaviour the liveness lints flag.
            let rg = ReachabilityGraph::explore(stg.net(), 1_000_000).expect("safe");
            assert!(!rg.deadlocks().is_empty(), "no deadlock at n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "two philosophers")]
    fn lone_philosopher_panics() {
        dining_philosophers(1);
    }

    #[test]
    fn sequencer_state_count() {
        let stg = sequencer(7);
        let rg = ReachabilityGraph::explore(stg.net(), 10_000).expect("safe");
        assert_eq!(rg.len(), 14);
        assert!(rg.deadlocks().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_pipeline_panics() {
        muller_pipeline(0);
    }
}
