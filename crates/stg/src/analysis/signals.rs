//! Signal-level static checks: properties of the labelling `L` that the
//! net-level structural pass (which sees only places and transitions)
//! cannot express.

use si_petri::{PlaceId, TransitionId};

use crate::model::Stg;
use crate::signal::{Polarity, SignalId};

/// Findings of the signal-level pass. All lists are in id order and
/// deduplicated, so diagnostics derived from them are stable.
#[derive(Debug, Clone, Default)]
pub struct SignalFindings {
    /// Declared signals with no transition at all: the declaration is dead
    /// weight, and an implementable signal without transitions cannot be
    /// synthesised.
    pub dead_signals: Vec<SignalId>,
    /// Signals with transitions of only one polarity — they can only ever
    /// rise (or only fall), so no consistent binary encoding cycles them.
    pub single_polarity: Vec<SignalId>,
    /// Places whose preset and postset contain same-signal, same-polarity
    /// transitions: the syntactic path `a* → p → a*` repeats a change
    /// without the opposite change in between, violating rise/fall
    /// alternation on that path. One entry per offending place.
    pub alternation_violations: Vec<(PlaceId, SignalId, Polarity)>,
    /// Unlabelled (dummy) transitions. The data model allows them; both
    /// synthesis flows reject them up front.
    pub dummy_transitions: Vec<TransitionId>,
}

/// Runs the signal-level checks over `stg`.
pub fn signal_findings(stg: &Stg) -> SignalFindings {
    let mut findings = SignalFindings::default();
    let net = stg.net();

    let mut has_rise = vec![false; stg.signal_count()];
    let mut has_fall = vec![false; stg.signal_count()];
    for t in net.transitions() {
        match stg.label(t) {
            Some(l) => match l.polarity {
                Polarity::Rise => has_rise[l.signal.index()] = true,
                Polarity::Fall => has_fall[l.signal.index()] = true,
            },
            None => findings.dummy_transitions.push(t),
        }
    }
    for s in stg.signals() {
        match (has_rise[s.index()], has_fall[s.index()]) {
            (false, false) => findings.dead_signals.push(s),
            (true, true) => {}
            _ => findings.single_polarity.push(s),
        }
    }

    for p in net.places() {
        let violation = net.place_preset(p).iter().find_map(|&t_in| {
            let l_in = stg.label(t_in)?;
            net.place_postset(p).iter().find_map(|&t_out| {
                // A self-loop (same transition on both sides) is a read
                // arc, not a repeated change.
                if t_in == t_out {
                    return None;
                }
                let l_out = stg.label(t_out)?;
                (l_in == l_out).then_some((p, l_in.signal, l_in.polarity))
            })
        });
        if let Some(v) = violation {
            findings.alternation_violations.push(v);
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StgBuilder;
    use crate::signal::SignalKind;

    #[test]
    fn dead_and_single_polarity_signals() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let _unused = b.signal("u", SignalKind::Output);
        let only_rise = b.output("r");
        let ap = b.rise(a);
        let am = b.fall(a);
        let rp = b.rise(only_rise);
        b.arc_tt(ap, rp);
        b.arc_tt(rp, am);
        let back = b.arc_tt(am, ap);
        b.mark(back);
        let stg = b.must_build();
        let findings = signal_findings(&stg);
        assert_eq!(findings.dead_signals.len(), 1);
        assert_eq!(findings.single_polarity.len(), 1);
        assert!(findings.alternation_violations.is_empty());
        assert!(findings.dummy_transitions.is_empty());
    }

    #[test]
    fn alternation_violation_detected() {
        // a+ → p → a+ (second instance): same signal, same polarity.
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let a1 = b.rise(a);
        let a2 = b.rise(a);
        let am = b.fall(a);
        b.arc_tt(a1, a2);
        b.arc_tt(a2, am);
        let back = b.arc_tt(am, a1);
        b.mark(back);
        let stg = b.must_build();
        let findings = signal_findings(&stg);
        assert_eq!(findings.alternation_violations.len(), 1);
        let (_, signal, polarity) = findings.alternation_violations[0];
        assert_eq!(signal, a);
        assert_eq!(polarity, Polarity::Rise);
    }

    #[test]
    fn dummies_reported() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let ap = b.rise(a);
        let d = b.dummy("eps");
        let am = b.fall(a);
        b.arc_tt(ap, d);
        b.arc_tt(d, am);
        let back = b.arc_tt(am, ap);
        b.mark(back);
        let stg = b.must_build();
        assert_eq!(signal_findings(&stg).dummy_transitions, vec![d]);
    }
}
