//! Structural static analysis of STGs.
//!
//! A polynomial-time pass in the spirit of the source paper's pitch —
//! answer what you can from **structure**, before any reachability engine
//! runs. The pass combines
//!
//! * the net-level machinery of [`si_petri::structural`] (incidence
//!   matrix, exact P/T-invariants, unary-invariant 1-safety certificates,
//!   siphons, net classes) applied to the STG's underlying net, and
//! * the signal-level checks of [`signals`] (dead signals, rise/fall
//!   alternation on syntactic paths, polarity coverage, dummies),
//!
//! and surfaces everything two ways: as a typed [`StgAnalysis`] record for
//! engine integration (certified safety skips, invariant-seeded BDD
//! orders, structural state bounds), and as severity-ranked, stable-coded
//! [`lint`] diagnostics (`SI-E…`/`SI-W…`/`SI-I…`) with spans into the `.g`
//! source.

mod lint;
mod signals;

pub use lint::{lint, lint_text, lint_with_analysis, DiagCode, Diagnostic, LintReport, Severity};
pub use signals::{signal_findings, SignalFindings};

use si_petri::structural::{
    self, certify_deadlock, certify_one_safe, classify, connected_components, dead_by_siphon,
    duplicate_places, non_repeatable_transitions, rank_check, structural_state_bound,
    unmarked_siphon, DeadlockCertificate, Incidence, NetClass, RankCheck, SafetyCertificate,
};
use si_petri::{NetError, PlaceId, TransitionId};

use crate::error::StgError;
use crate::model::Stg;

/// Everything the structural pass can determine about an STG without
/// exploring a single marking.
#[derive(Debug, Clone)]
pub struct StgAnalysis {
    /// The incidence matrix of the underlying net.
    pub incidence: Incidence,
    /// Integer basis of the P-invariants (`None` when the exact arithmetic
    /// overflowed `i128`).
    pub p_invariants: Option<Vec<Vec<i64>>>,
    /// Integer basis of the T-invariants (`None` on overflow).
    pub t_invariants: Option<Vec<Vec<i64>>>,
    /// The unary-invariant 1-safety certificate. When
    /// [`SafetyCertificate::certified`] holds, every engine may skip its
    /// dynamic 1-safety checks for this net.
    pub safety: SafetyCertificate,
    /// Upper bound on the reachable-marking count implied by the
    /// certificate (see [`structural_state_bound`]).
    pub state_bound: Option<u128>,
    /// Structural net-class membership.
    pub class: NetClass,
    /// The maximal siphon among initially unmarked places (empty for
    /// well-formed live specifications).
    pub siphon: Vec<PlaceId>,
    /// Transitions structurally dead because they consume from
    /// [`siphon`](Self::siphon).
    pub dead_transitions: Vec<TransitionId>,
    /// Weakly connected components carrying at least one arc.
    pub components: usize,
    /// `(duplicate, original)` pairs of structurally identical places.
    pub duplicates: Vec<(PlaceId, PlaceId)>,
    /// Transitions with an empty postset: every firing drains a token.
    pub sink_transitions: Vec<TransitionId>,
    /// Places with producers but no consumer: tokens pile up.
    pub accumulator_places: Vec<PlaceId>,
    /// Transitions outside every T-invariant — they fire at most finitely
    /// often on any run (`None` on overflow).
    pub non_repeatable: Option<Vec<TransitionId>>,
    /// Structural well-formedness violations (shared rule set with
    /// [`si_petri::PetriNet::validate`]).
    pub validation: Vec<NetError>,
    /// Width mismatch of a preset initial code, if any — the rule
    /// [`Stg::validate`] enforces beyond the net-level ones.
    pub code_width: Option<StgError>,
    /// Signal-level findings.
    pub signals: SignalFindings,
    /// The structural deadlock verdict: siphon–trap deadlock-freedom
    /// certificate, certified reachable deadlock, a failing siphon witness,
    /// or no conclusion.
    pub deadlock: DeadlockCertificate,
    /// The free-choice rank-theorem data (`None` when the exact rank
    /// computation overflowed). Only meaningful for connected free-choice
    /// nets; see [`RankCheck::holds`].
    pub rank: Option<RankCheck>,
}

/// Runs the full structural pass over `stg`.
pub fn analyze(stg: &Stg) -> StgAnalysis {
    let net = stg.net();
    let incidence = Incidence::of(net);
    let safety = certify_one_safe(net);
    let state_bound = structural_state_bound(net, &safety);
    let siphon = unmarked_siphon(net);
    let dead_transitions = dead_by_siphon(net, &siphon);
    let sink_transitions = net
        .transitions()
        .filter(|&t| net.postset(t).is_empty())
        .collect();
    let accumulator_places = net
        .places()
        .filter(|&p| !net.place_preset(p).is_empty() && net.place_postset(p).is_empty())
        .collect();
    let deadlock = certify_deadlock(net, &safety);
    StgAnalysis {
        p_invariants: structural::p_invariant_basis(&incidence),
        t_invariants: structural::t_invariant_basis(&incidence),
        non_repeatable: non_repeatable_transitions(&incidence),
        incidence,
        deadlock,
        rank: rank_check(net),
        safety,
        state_bound,
        class: classify(net),
        siphon,
        dead_transitions,
        components: connected_components(net),
        duplicates: duplicate_places(net),
        sink_transitions,
        accumulator_places,
        validation: structural::validation_errors(net),
        code_width: code_width_error(stg),
        signals: signal_findings(stg),
    }
}

/// The one validation rule that lives at the STG (not net) level: a preset
/// initial code must be as wide as the signal count. Shared by
/// [`Stg::validate`] and the linter.
pub fn code_width_error(stg: &Stg) -> Option<StgError> {
    let code = stg.initial_code()?;
    (code.len() != stg.signal_count()).then(|| StgError::CodeWidthMismatch {
        expected: stg.signal_count(),
        found: code.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StgBuilder;

    fn handshake() -> Stg {
        let mut b = StgBuilder::new();
        let req = b.input("req");
        let ack = b.output("ack");
        let rp = b.rise(req);
        let ap = b.rise(ack);
        let rm = b.fall(req);
        let am = b.fall(ack);
        b.arc_tt(rp, ap);
        b.arc_tt(ap, rm);
        b.arc_tt(rm, am);
        let back = b.arc_tt(am, rp);
        b.mark(back);
        b.initial_all_zero();
        b.must_build()
    }

    #[test]
    fn clean_handshake_analysis() {
        let a = analyze(&handshake());
        assert!(a.safety.certified);
        assert_eq!(a.state_bound, Some(4));
        assert!(a.class.marked_graph);
        assert!(a.siphon.is_empty());
        assert!(a.dead_transitions.is_empty());
        assert_eq!(a.components, 1);
        assert!(a.duplicates.is_empty());
        assert!(a.sink_transitions.is_empty());
        assert!(a.accumulator_places.is_empty());
        assert_eq!(a.non_repeatable.as_deref(), Some(&[][..]));
        assert!(a.validation.is_empty());
        assert!(a.code_width.is_none());
        assert!(a.signals.dead_signals.is_empty());
        // One P-invariant (the cycle), one T-invariant (the full cycle).
        assert_eq!(a.p_invariants.as_deref().map(<[_]>::len), Some(1));
        assert_eq!(a.t_invariants.as_deref().map(<[_]>::len), Some(1));
        // The handshake cycle is a marked graph whose single cycle is
        // initially marked: certified deadlock-free via the linear path.
        assert_eq!(a.deadlock, DeadlockCertificate::DeadlockFreeMarkedGraph);
        // A live safe marked graph satisfies the rank equation.
        assert_eq!(a.rank.map(|r| r.holds()), Some(true));
    }
}
