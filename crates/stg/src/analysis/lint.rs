//! The STG specification linter: severity-ranked, stable-coded
//! diagnostics derived from the structural pass, with spans into the `.g`
//! source when the STG came from [`crate::parse_g_lenient`].
//!
//! Diagnostic codes are stable API — tools may match on them:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `SI-E001` | error | transition with an empty preset (always enabled) |
//! | `SI-E002` | error | net has transitions but no initial token |
//! | `SI-E003` | error | dummy (unlabelled) transition — unsupported by synthesis |
//! | `SI-E004` | error | certified reachable deadlock (never-marked siphon + termination) |
//! | `SI-W001` | warning | declared signal with no transitions |
//! | `SI-W002` | warning | 1-safety not structurally certified |
//! | `SI-W003` | warning | initially unmarked siphon (structurally dead transitions) |
//! | `SI-W004` | warning | sink transition (empty postset) |
//! | `SI-W005` | warning | net splits into disconnected components |
//! | `SI-W006` | warning | place duplicates another (same preset/postset/marking) |
//! | `SI-W007` | warning | rise/fall alternation violated on a syntactic path |
//! | `SI-W008` | warning | signal only rises or only falls |
//! | `SI-W009` | warning | accumulator place (producers but no consumer) |
//! | `SI-W010` | warning | transition outside every T-invariant (fires finitely often) |
//! | `SI-W011` | warning | siphon–trap property fails (a minimal siphon has no marked trap) |
//! | `SI-W012` | warning | free-choice rank condition fails (no marking is live and safe) |
//! | `SI-I001` | info | structural net class |
//! | `SI-I002` | info | invariant/safety-certificate summary |
//! | `SI-I003` | info | deadlock-freedom certificate (siphon–trap property verified) |

use std::fmt;

use si_petri::structural::DeadlockCertificate;
use si_petri::NetError;

use super::{analyze, StgAnalysis};
use crate::error::StgError;
use crate::model::Stg;
use crate::parse::{parse_g_lenient, SourceSpans};

/// Severity of a [`Diagnostic`]. Errors make a spec unusable for
/// synthesis; warnings flag likely specification mistakes; infos report
/// structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The specification cannot be synthesised as written.
    Error,
    /// Suspicious structure that usually indicates a mistake.
    Warning,
    /// Structural information, not a problem.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// Stable diagnostic codes (see the module table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the module-level table documents every code
pub enum DiagCode {
    E001,
    E002,
    E003,
    E004,
    W001,
    W002,
    W003,
    W004,
    W005,
    W006,
    W007,
    W008,
    W009,
    W010,
    W011,
    W012,
    I001,
    I002,
    I003,
}

impl DiagCode {
    /// The stable string form, e.g. `"SI-W002"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::E001 => "SI-E001",
            DiagCode::E002 => "SI-E002",
            DiagCode::E003 => "SI-E003",
            DiagCode::E004 => "SI-E004",
            DiagCode::W001 => "SI-W001",
            DiagCode::W002 => "SI-W002",
            DiagCode::W003 => "SI-W003",
            DiagCode::W004 => "SI-W004",
            DiagCode::W005 => "SI-W005",
            DiagCode::W006 => "SI-W006",
            DiagCode::W007 => "SI-W007",
            DiagCode::W008 => "SI-W008",
            DiagCode::W009 => "SI-W009",
            DiagCode::W010 => "SI-W010",
            DiagCode::W011 => "SI-W011",
            DiagCode::W012 => "SI-W012",
            DiagCode::I001 => "SI-I001",
            DiagCode::I002 => "SI-I002",
            DiagCode::I003 => "SI-I003",
        }
    }

    /// The severity class of the code.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::E001 | DiagCode::E002 | DiagCode::E003 | DiagCode::E004 => Severity::Error,
            DiagCode::I001 | DiagCode::I002 | DiagCode::I003 => Severity::Info,
            _ => Severity::Warning,
        }
    }

    /// Every code, in report order — the source of truth for "is every
    /// code exercised by the corpus" tests.
    pub fn all() -> &'static [DiagCode] {
        &[
            DiagCode::E001,
            DiagCode::E002,
            DiagCode::E003,
            DiagCode::E004,
            DiagCode::W001,
            DiagCode::W002,
            DiagCode::W003,
            DiagCode::W004,
            DiagCode::W005,
            DiagCode::W006,
            DiagCode::W007,
            DiagCode::W008,
            DiagCode::W009,
            DiagCode::W010,
            DiagCode::W011,
            DiagCode::W012,
            DiagCode::I001,
            DiagCode::I002,
            DiagCode::I003,
        ]
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One linter finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Human-readable description, with entity names filled in.
    pub message: String,
    /// 1-based `.g` source line, when the STG was parsed with spans.
    pub line: Option<usize>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.code.severity())?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The full result of linting one specification.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The specification name (from `.model`).
    pub spec: String,
    /// All findings, severity-ranked (errors, warnings, infos), then by
    /// code, then by source line.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity() == severity)
            .count()
    }

    /// `true` when any error-severity diagnostic is present — the
    /// condition under which `synth --lint` exits non-zero.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// `true` when nothing above info severity fired.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0 && self.warning_count() == 0
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} errors, {} warnings\n",
            self.spec,
            self.error_count(),
            self.warning_count()
        );
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the report as a JSON object (hand-rolled — the workspace
    /// carries no serialisation dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"spec\":{},", json_string(&self.spec)));
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},",
            self.error_count(),
            self.warning_count()
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"line\":{},\"message\":{}}}",
                d.code,
                d.code.severity(),
                match d.line {
                    Some(l) => l.to_string(),
                    None => "null".to_owned(),
                },
                json_string(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints `stg`, running the structural pass internally. Pass the
/// [`SourceSpans`] from [`crate::parse_g_spanned`] /
/// [`parse_g_lenient`] to get source lines on the diagnostics.
pub fn lint(stg: &Stg, spans: Option<&SourceSpans>) -> LintReport {
    lint_with_analysis(stg, &analyze(stg), spans)
}

/// Parses `.g` text leniently and lints the result — the one-call entry
/// point behind `synth --lint`.
///
/// # Errors
///
/// Returns [`StgError`] only for syntax-level problems; structural
/// problems come back as diagnostics.
pub fn lint_text(text: &str) -> Result<LintReport, StgError> {
    let (stg, spans) = parse_g_lenient(text)?;
    Ok(lint(&stg, Some(&spans)))
}

/// Truncating name list for summary diagnostics: `a, b, c, … (12 more)`.
fn name_list(names: &[String]) -> String {
    const SHOWN: usize = 4;
    if names.len() <= SHOWN {
        names.join(", ")
    } else {
        format!(
            "{}, … ({} more)",
            names[..SHOWN].join(", "),
            names.len() - SHOWN
        )
    }
}

/// Lints from a pre-computed [`StgAnalysis`] (use when the caller already
/// ran [`analyze`] for engine integration).
pub fn lint_with_analysis(
    stg: &Stg,
    analysis: &StgAnalysis,
    spans: Option<&SourceSpans>,
) -> LintReport {
    let net = stg.net();
    let mut diagnostics = Vec::new();
    let t_line = |t| spans.and_then(|s| s.transition_line(t));
    let p_line = |p| spans.and_then(|s| s.place_line(p));
    let s_line = |s_id| spans.and_then(|s| s.signal_line(s_id));
    let place_names = |places: &[si_petri::PlaceId]| {
        name_list(
            &places
                .iter()
                .map(|&p| format!("`{}`", net.place_name(p)))
                .collect::<Vec<_>>(),
        )
    };

    // SI-E001 / SI-E002: the shared structural validation rules.
    for e in &analysis.validation {
        match e {
            NetError::EmptyPreset { transition, .. } => diagnostics.push(Diagnostic {
                code: DiagCode::E001,
                message: format!(
                    "transition `{}` has an empty preset: it is permanently enabled and \
                     makes the behaviour unbounded",
                    stg.transition_label_string(*transition)
                ),
                line: t_line(*transition),
            }),
            NetError::EmptyInitialMarking => diagnostics.push(Diagnostic {
                code: DiagCode::E002,
                message: "the net has transitions but no initial token: nothing can ever fire"
                    .to_owned(),
                line: None,
            }),
            _ => {}
        }
    }
    // SI-E003: dummy transitions.
    for &t in &analysis.signals.dummy_transitions {
        diagnostics.push(Diagnostic {
            code: DiagCode::E003,
            message: format!(
                "transition `{}` is a dummy (unlabelled): synthesis flows reject dummies",
                stg.transition_label_string(t)
            ),
            line: t_line(t),
        });
    }

    // SI-E004: certified reachable deadlock.
    if let DeadlockCertificate::CertifiedDeadlock { siphon } = &analysis.deadlock {
        diagnostics.push(Diagnostic {
            code: DiagCode::E004,
            message: format!(
                "certified reachable deadlock: the siphon {} can never be (re)marked and \
                 the surviving transitions admit no T-invariant — every run of this \
                 1-safety-certified net ends in a dead marking",
                place_names(siphon)
            ),
            line: siphon.first().and_then(|&p| p_line(p)),
        });
    }

    // SI-W001: dead signals.
    for &s in &analysis.signals.dead_signals {
        diagnostics.push(Diagnostic {
            code: DiagCode::W001,
            message: format!(
                "signal `{}` is declared but has no transitions",
                stg.signal_name(s)
            ),
            line: s_line(s),
        });
    }

    // SI-W002: 1-safety not structurally certified (summary).
    if !analysis.safety.certified {
        let uncovered = analysis.safety.uncovered();
        diagnostics.push(Diagnostic {
            code: DiagCode::W002,
            message: format!(
                "1-safety is not structurally certified: no unary P-invariant with at most \
                 one initial token covers {} ({} of {} places); the engines will fall back \
                 to dynamic safety checks",
                place_names(&uncovered),
                uncovered.len(),
                net.place_count()
            ),
            line: uncovered.first().and_then(|&p| p_line(p)),
        });
    }

    // SI-W003: initially unmarked siphon (summary).
    if !analysis.dead_transitions.is_empty() {
        let dead = name_list(
            &analysis
                .dead_transitions
                .iter()
                .map(|&t| format!("`{}`", stg.transition_label_string(t)))
                .collect::<Vec<_>>(),
        );
        diagnostics.push(Diagnostic {
            code: DiagCode::W003,
            message: format!(
                "the initially unmarked place set {} is a siphon: it can never acquire a \
                 token, so {} can never fire",
                place_names(&analysis.siphon),
                dead
            ),
            line: analysis.siphon.first().and_then(|&p| p_line(p)),
        });
    }

    // SI-W004: sink transitions.
    for &t in &analysis.sink_transitions {
        diagnostics.push(Diagnostic {
            code: DiagCode::W004,
            message: format!(
                "transition `{}` has an empty postset: every firing drains a token from \
                 the net",
                stg.transition_label_string(t)
            ),
            line: t_line(t),
        });
    }

    // SI-W005: disconnected components (summary).
    if analysis.components > 1 {
        diagnostics.push(Diagnostic {
            code: DiagCode::W005,
            message: format!(
                "the net splits into {} disconnected components: independent behaviours \
                 usually belong in separate specifications",
                analysis.components
            ),
            line: None,
        });
    }

    // SI-W006: duplicate places.
    for &(dup, orig) in &analysis.duplicates {
        diagnostics.push(Diagnostic {
            code: DiagCode::W006,
            message: format!(
                "place `{}` duplicates `{}` (same preset, postset and initial marking): \
                 it is structurally redundant",
                net.place_name(dup),
                net.place_name(orig)
            ),
            line: p_line(dup),
        });
    }

    // SI-W007: alternation violations.
    for &(p, s, pol) in &analysis.signals.alternation_violations {
        diagnostics.push(Diagnostic {
            code: DiagCode::W007,
            message: format!(
                "place `{}` chains two `{}{}` transitions: rise/fall alternation of \
                 `{}` is violated on this path",
                net.place_name(p),
                stg.signal_name(s),
                pol,
                stg.signal_name(s)
            ),
            line: p_line(p),
        });
    }

    // SI-W008: single-polarity signals.
    for &s in &analysis.signals.single_polarity {
        diagnostics.push(Diagnostic {
            code: DiagCode::W008,
            message: format!(
                "signal `{}` has transitions of only one polarity: no consistent binary \
                 encoding can cycle it",
                stg.signal_name(s)
            ),
            line: s_line(s),
        });
    }

    // SI-W009: accumulator places.
    for &p in &analysis.accumulator_places {
        diagnostics.push(Diagnostic {
            code: DiagCode::W009,
            message: format!(
                "place `{}` has producers but no consumer: tokens accumulate and 1-safety \
                 is at risk",
                net.place_name(p)
            ),
            line: p_line(p),
        });
    }

    // SI-W010: non-repeatable transitions (summary).
    if let Some(non_rep) = &analysis.non_repeatable {
        if !non_rep.is_empty() {
            let names = name_list(
                &non_rep
                    .iter()
                    .map(|&t| format!("`{}`", stg.transition_label_string(t)))
                    .collect::<Vec<_>>(),
            );
            diagnostics.push(Diagnostic {
                code: DiagCode::W010,
                message: format!(
                    "{} transition(s) appear in no T-invariant and can fire at most \
                     finitely often: {} — cyclic specifications should repeat every \
                     transition",
                    non_rep.len(),
                    names
                ),
                line: non_rep.first().and_then(|&t| t_line(t)),
            });
        }
    }

    // SI-W011: siphon–trap property fails with a concrete witness.
    if let DeadlockCertificate::SiphonWithoutMarkedTrap { siphon } = &analysis.deadlock {
        diagnostics.push(Diagnostic {
            code: DiagCode::W011,
            message: format!(
                "siphon–trap property fails: the minimal siphon {} contains no initially \
                 marked trap, so deadlock-freedom cannot be certified — once this siphon \
                 drains it stays empty forever",
                place_names(siphon)
            ),
            line: siphon.first().and_then(|&p| p_line(p)),
        });
    }

    // SI-W012: free-choice rank condition fails.
    if analysis.class.free_choice && analysis.components <= 1 && net.transition_count() > 0 {
        if let Some(rank) = &analysis.rank {
            if !rank.holds() {
                diagnostics.push(Diagnostic {
                    code: DiagCode::W012,
                    message: format!(
                        "free-choice rank condition fails: rank(C) = {} but the net has {} \
                         cluster(s) (well-formedness requires rank = clusters − 1) — no \
                         initial marking makes this net live and safe",
                        rank.rank, rank.clusters
                    ),
                    line: None,
                });
            }
        }
    }

    // SI-I001: net class.
    diagnostics.push(Diagnostic {
        code: DiagCode::I001,
        message: format!("net class: {}", analysis.class.describe()),
        line: None,
    });

    // SI-I002: invariant / certificate summary.
    let p_count = analysis.p_invariants.as_deref().map(<[_]>::len);
    let t_count = analysis.t_invariants.as_deref().map(<[_]>::len);
    let fmt_count = |c: Option<usize>| match c {
        Some(n) => n.to_string(),
        None => "overflow".to_owned(),
    };
    diagnostics.push(Diagnostic {
        code: DiagCode::I002,
        message: format!(
            "{} P-invariant(s), {} T-invariant(s); 1-safety {} by {} unary cover(s){}",
            fmt_count(p_count),
            fmt_count(t_count),
            if analysis.safety.certified {
                "certified"
            } else {
                "not certified"
            },
            analysis.safety.invariants.len(),
            match analysis.state_bound {
                Some(b) if analysis.safety.certified => format!("; ≤ {b} reachable markings"),
                _ => String::new(),
            }
        ),
        line: None,
    });

    // SI-I003: deadlock-freedom certificate summary.
    match analysis.deadlock {
        DeadlockCertificate::DeadlockFree { siphons_checked } => {
            diagnostics.push(Diagnostic {
                code: DiagCode::I003,
                message: if siphons_checked == 0 {
                    "deadlock-free: a permanently enabled transition rules out dead markings"
                        .to_owned()
                } else {
                    format!(
                        "deadlock-freedom certificate: every one of the {siphons_checked} minimal \
                         siphon(s) contains an initially marked trap — no reachable marking is dead"
                    )
                },
                line: None,
            });
        }
        DeadlockCertificate::DeadlockFreeMarkedGraph => {
            diagnostics.push(Diagnostic {
                code: DiagCode::I003,
                message: "deadlock-freedom certificate: the net is a marked graph and every \
                          directed cycle is initially marked (cycle token counts are invariant) \
                          — no reachable marking is dead"
                    .to_owned(),
                line: None,
            });
        }
        _ => {}
    }

    // Severity-rank the report: errors, warnings, infos; then code; then
    // source line (unknown lines last); insertion order breaks ties.
    let mut keyed: Vec<(usize, Diagnostic)> = diagnostics.into_iter().enumerate().collect();
    keyed.sort_by(|(ia, a), (ib, b)| {
        (a.code.severity(), a.code, a.line.unwrap_or(usize::MAX), *ia).cmp(&(
            b.code.severity(),
            b.code,
            b.line.unwrap_or(usize::MAX),
            *ib,
        ))
    });
    LintReport {
        spec: stg.name().to_owned(),
        diagnostics: keyed.into_iter().map(|(_, d)| d).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "
.model clean
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.initial { req=0 ack=0 }
.end
";

    #[test]
    fn clean_spec_gets_only_infos() {
        let report = lint_text(CLEAN).expect("parses");
        assert!(report.is_clean(), "{}", report.render());
        assert!(!report.has_errors());
        let codes: Vec<DiagCode> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![DiagCode::I001, DiagCode::I002, DiagCode::I003]);
        assert!(report.render().contains("0 errors, 0 warnings"));
    }

    #[test]
    fn empty_marking_is_error_with_lenient_parse() {
        let text = "
.model bad
.inputs a
.graph
a+ a-
a- a+
.marking { }
.end
";
        let report = lint_text(text).expect("lenient parse");
        assert!(report.has_errors());
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.code == DiagCode::E002)
                .count(),
            1
        );
    }

    #[test]
    fn source_spans_attached() {
        let text = "
.model spans
.inputs a b
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.end
";
        let report = lint_text(text).expect("parses");
        // `b` is dead, declared on line 3.
        let w001 = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::W001)
            .expect("dead signal");
        assert_eq!(w001.line, Some(3));
        assert!(w001.message.contains("`b`"));
    }

    #[test]
    fn severity_ranking_orders_report() {
        // Dummy (error) + dead signal (warning): error must come first.
        let text = "
.model mix
.inputs a z
.dummy eps
.graph
a+ eps
eps a-
a- a+
.marking { <a-,a+> }
.end
";
        let report = lint_text(text).expect("parses");
        let severities: Vec<Severity> = report
            .diagnostics
            .iter()
            .map(|d| d.code.severity())
            .collect();
        let mut sorted = severities.clone();
        sorted.sort();
        assert_eq!(severities, sorted);
        assert!(report.has_errors());
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let report = lint_text(CLEAN).expect("parses");
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"spec\":\"clean\""));
        assert!(json.contains("\"code\":\"SI-I001\""));
        assert!(json.contains("\"errors\":0"));
        // Escaping: a name with a quote must not break the string.
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn every_code_has_distinct_string() {
        let mut seen = std::collections::HashSet::new();
        for &code in DiagCode::all() {
            assert!(seen.insert(code.as_str()), "duplicate {code}");
            assert!(code.as_str().starts_with("SI-"));
        }
        assert_eq!(seen.len(), 19);
    }
}
