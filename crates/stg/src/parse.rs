//! Parser for the `.g`/astg interchange format used by SIS and Petrify.
//!
//! The accepted subset covers what the benchmark suite needs:
//!
//! ```text
//! .model name
//! .inputs a b
//! .outputs c
//! .internal d
//! .dummy e1
//! .graph
//! a+ c+            # transition → transition (implicit place)
//! p0 a+            # place → transition
//! c+ p0            # transition → place
//! a+/2 c-          # indexed transition instances
//! .marking { p0 <a+,c+> }
//! .initial { a=1 b=0 c=0 d=0 }   # extension: explicit v0
//! .end
//! ```
//!
//! Comments start with `#`. The `.initial` section is an extension of this
//! workspace (standard `.g` files leave `v₀` to be inferred from the
//! reachability graph; see `si-stategraph`).

use std::collections::{HashMap, HashSet};

use si_petri::{PlaceId, TransitionId};

use crate::binary::BinaryCode;
use crate::error::StgError;
use crate::model::{Stg, StgBuilder};
use crate::signal::{Polarity, SignalId, SignalKind};

/// Parses an STG from `.g` text.
///
/// # Errors
///
/// Returns [`StgError::Parse`] with a line number for syntax errors and
/// [`StgError`] variants from [`StgBuilder::build`] for semantic ones.
///
/// # Examples
///
/// ```
/// use si_stg::parse_g;
///
/// # fn main() -> Result<(), si_stg::StgError> {
/// let stg = parse_g(
///     ".model tiny
///      .inputs a
///      .outputs b
///      .graph
///      a+ b+
///      b+ a-
///      a- b-
///      b- a+
///      .marking { <b-,a+> }
///      .initial { a=0 b=0 }
///      .end",
/// )?;
/// assert_eq!(stg.signal_count(), 2);
/// assert_eq!(stg.name(), "tiny");
/// # Ok(())
/// # }
/// ```
pub fn parse_g(text: &str) -> Result<Stg, StgError> {
    Parser::new().parse(text, true).map(|(stg, _)| stg)
}

/// Parses an STG from `.g` text, additionally returning the
/// [`SourceSpans`] mapping every signal, transition and place back to the
/// line that introduced it — the raw material for linter diagnostics.
///
/// # Errors
///
/// Same as [`parse_g`].
pub fn parse_g_spanned(text: &str) -> Result<(Stg, SourceSpans), StgError> {
    Parser::new().parse(text, true)
}

/// Parses an STG from `.g` text **leniently**: syntax errors are still
/// hard [`StgError`]s, but structural validation ([`Stg::validate`]) is
/// skipped, so specifications with empty presets or an empty initial
/// marking come back as `Stg` values the linter can diagnose with precise
/// spans instead of a single first-error.
///
/// # Errors
///
/// Returns [`StgError::Parse`] and friends for syntax-level problems only.
pub fn parse_g_lenient(text: &str) -> Result<(Stg, SourceSpans), StgError> {
    Parser::new().parse(text, false)
}

/// 1-based source lines of the entities of a parsed `.g` file: for each
/// signal the declaring `.inputs`/`.outputs`/`.internal` line, for each
/// transition and place the first line that used it. Ids created outside
/// parsing (or the synthetic entities of generators) have no span.
#[derive(Debug, Clone, Default)]
pub struct SourceSpans {
    signals: Vec<usize>,
    transitions: Vec<usize>,
    places: Vec<usize>,
}

impl SourceSpans {
    fn note(slot: &mut Vec<usize>, index: usize, line: usize) {
        if slot.len() <= index {
            slot.resize(index + 1, 0);
        }
        if slot[index] == 0 {
            slot[index] = line;
        }
    }

    fn get(slot: &[usize], index: usize) -> Option<usize> {
        match slot.get(index) {
            Some(&line) if line > 0 => Some(line),
            _ => None,
        }
    }

    /// The line declaring `signal`, if known.
    pub fn signal_line(&self, signal: SignalId) -> Option<usize> {
        Self::get(&self.signals, signal.index())
    }

    /// The line first using `transition`, if known.
    pub fn transition_line(&self, transition: TransitionId) -> Option<usize> {
        Self::get(&self.transitions, transition.index())
    }

    /// The line first using `place`, if known.
    pub fn place_line(&self, place: PlaceId) -> Option<usize> {
        Self::get(&self.places, place.index())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Header,
    Graph,
    Done,
}

struct Parser {
    builder: StgBuilder,
    section: Section,
    /// Declared signal name → id (mirrors the builder, for token lookup).
    signal_ids: HashMap<String, SignalId>,
    /// Token (e.g. `a+/2` or a dummy name) → transition id.
    transitions: HashMap<String, TransitionId>,
    /// Explicit place name → place id.
    places: HashMap<String, PlaceId>,
    /// `(source token, target token)` → implicit place id.
    implicit: HashMap<(String, String), PlaceId>,
    dummies: HashSet<String>,
    saw_marking: bool,
    initial: HashMap<String, bool>,
    spans: SourceSpans,
}

impl Parser {
    fn new() -> Self {
        Parser {
            builder: StgBuilder::new(),
            section: Section::Header,
            signal_ids: HashMap::new(),
            transitions: HashMap::new(),
            places: HashMap::new(),
            implicit: HashMap::new(),
            dummies: HashSet::new(),
            saw_marking: false,
            initial: HashMap::new(),
            spans: SourceSpans::default(),
        }
    }

    fn err(line: usize, message: impl Into<String>) -> StgError {
        StgError::Parse {
            line,
            message: message.into(),
        }
    }

    fn parse(mut self, text: &str, strict: bool) -> Result<(Stg, SourceSpans), StgError> {
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            self.parse_line(line_no, line)?;
        }
        if !self.saw_marking {
            return Err(Self::err(0, "missing .marking section"));
        }
        self.finish(strict)
    }

    /// Signal and dummy names must be plain identifiers: anything with
    /// transition-token or section syntax in it would make later lines
    /// ambiguous, so it is rejected up front.
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && !name.starts_with('.')
            && !name
                .chars()
                .any(|c| matches!(c, '+' | '-' | '/' | '<' | '>' | '{' | '}' | ',' | '=' | '#'))
    }

    fn declare(&mut self, line_no: usize, name: &str, kind: SignalKind) -> Result<(), StgError> {
        if !Self::valid_name(name) {
            return Err(Self::err(line_no, format!("invalid signal name `{name}`")));
        }
        if self.signal_ids.contains_key(name) || self.dummies.contains(name) {
            return Err(StgError::DuplicateSignal {
                name: name.to_owned(),
            });
        }
        let id = self.builder.signal(name, kind);
        SourceSpans::note(&mut self.spans.signals, id.index(), line_no);
        self.signal_ids.insert(name.to_owned(), id);
        Ok(())
    }

    fn declare_dummy(&mut self, line_no: usize, name: &str) -> Result<(), StgError> {
        if !Self::valid_name(name) {
            return Err(Self::err(line_no, format!("invalid dummy name `{name}`")));
        }
        if self.signal_ids.contains_key(name) || self.dummies.contains(name) {
            return Err(StgError::DuplicateSignal {
                name: name.to_owned(),
            });
        }
        self.dummies.insert(name.to_owned());
        Ok(())
    }

    fn parse_line(&mut self, line_no: usize, line: &str) -> Result<(), StgError> {
        let mut tokens = line.split_whitespace();
        let Some(head) = tokens.next() else {
            return Ok(()); // blank lines are filtered by the caller
        };
        match head {
            ".model" | ".name" => {
                if let Some(name) = tokens.next() {
                    self.builder.set_name(name);
                }
            }
            ".inputs" => {
                for t in tokens {
                    self.declare(line_no, t, SignalKind::Input)?;
                }
            }
            ".outputs" => {
                for t in tokens {
                    self.declare(line_no, t, SignalKind::Output)?;
                }
            }
            ".internal" => {
                for t in tokens {
                    self.declare(line_no, t, SignalKind::Internal)?;
                }
            }
            ".dummy" => {
                for t in tokens {
                    self.declare_dummy(line_no, t)?;
                }
            }
            ".graph" => {
                self.section = Section::Graph;
            }
            ".marking" => {
                self.parse_marking(line_no, line)?;
                self.saw_marking = true;
            }
            ".initial" => {
                self.parse_initial(line_no, line)?;
            }
            ".capacity" => { /* ignored: all places are 1-safe */ }
            ".end" => {
                self.section = Section::Done;
            }
            _ if head.starts_with('.') => {
                return Err(Self::err(line_no, format!("unknown directive `{head}`")));
            }
            _ => {
                if self.section != Section::Graph {
                    return Err(Self::err(line_no, "arc outside .graph section"));
                }
                self.parse_arc_line(line_no, line)?;
            }
        }
        Ok(())
    }

    /// Classifies a graph-section token as transition-shaped or
    /// place-shaped. A token is transition-shaped when it is a declared
    /// dummy or its body (before an optional `/instance` suffix) ends in
    /// `+`/`-`; transition syntax used with an undeclared signal or a
    /// malformed instance suffix is a hard error, never a silently created
    /// place.
    fn is_transition_token(&self, line_no: usize, token: &str) -> Result<bool, StgError> {
        let body = match token.find('/') {
            Some(pos) => &token[..pos],
            None => token,
        };
        if self.dummies.contains(body) {
            Self::check_instance_suffix(line_no, token, body)?;
            return Ok(true);
        }
        if body.ends_with('+') || body.ends_with('-') {
            let (name, _) = signal_of_token(token).ok_or_else(|| {
                Self::err(line_no, format!("malformed transition token `{token}`"))
            })?;
            if !self.signal_ids.contains_key(name) {
                return Err(StgError::UnknownSignal {
                    name: name.to_owned(),
                });
            }
            Self::check_instance_suffix(line_no, token, body)?;
            return Ok(true);
        }
        if token.contains('/') {
            return Err(Self::err(
                line_no,
                format!("`/` is transition-instance syntax, but `{token}` is not a transition"),
            ));
        }
        Ok(false)
    }

    /// Validates an optional `/N` transition-instance suffix.
    fn check_instance_suffix(line_no: usize, token: &str, body: &str) -> Result<(), StgError> {
        let suffix = &token[body.len()..];
        if !suffix.is_empty() {
            let digits = &suffix[1..];
            if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
                return Err(Self::err(
                    line_no,
                    format!("malformed transition instance suffix in `{token}`"),
                ));
            }
        }
        Ok(())
    }

    fn parse_arc_line(&mut self, line_no: usize, line: &str) -> Result<(), StgError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 2 {
            return Err(Self::err(line_no, "arc line needs a source and a target"));
        }
        let src = tokens[0];
        for &dst in &tokens[1..] {
            self.add_arc(line_no, src, dst)?;
        }
        Ok(())
    }

    fn add_arc(&mut self, line_no: usize, src: &str, dst: &str) -> Result<(), StgError> {
        let src_is_t = self.is_transition_token(line_no, src)?;
        let dst_is_t = self.is_transition_token(line_no, dst)?;
        match (src_is_t, dst_is_t) {
            (true, true) => {
                let from = self.transition(line_no, src)?;
                let to = self.transition(line_no, dst)?;
                let place = self.builder.arc_tt(from, to);
                SourceSpans::note(&mut self.spans.places, place.index(), line_no);
                self.implicit
                    .insert((src.to_owned(), dst.to_owned()), place);
            }
            (true, false) => {
                let from = self.transition(line_no, src)?;
                let place = self.place(line_no, dst);
                self.builder.arc_tp(from, place);
            }
            (false, true) => {
                let place = self.place(line_no, src);
                let to = self.transition(line_no, dst)?;
                self.builder.arc_pt(place, to);
            }
            (false, false) => {
                return Err(Self::err(
                    line_no,
                    format!("arc `{src} {dst}` connects two places"),
                ));
            }
        }
        Ok(())
    }

    fn transition(&mut self, line_no: usize, token: &str) -> Result<TransitionId, StgError> {
        if let Some(&t) = self.transitions.get(token) {
            return Ok(t);
        }
        let body = match token.find('/') {
            Some(pos) => &token[..pos],
            None => token,
        };
        let t = if self.dummies.contains(body) {
            self.builder.dummy(token)
        } else {
            let (name, polarity) =
                signal_of_token(token).ok_or_else(|| StgError::UnknownSignal {
                    name: token.to_owned(),
                })?;
            let sig = *self
                .signal_ids
                .get(name)
                .ok_or_else(|| StgError::UnknownSignal {
                    name: name.to_owned(),
                })?;
            self.builder.transition(sig, polarity)
        };
        SourceSpans::note(&mut self.spans.transitions, t.index(), line_no);
        self.transitions.insert(token.to_owned(), t);
        Ok(t)
    }

    fn place(&mut self, line_no: usize, name: &str) -> PlaceId {
        if let Some(&p) = self.places.get(name) {
            return p;
        }
        let p = self.builder.place(name);
        SourceSpans::note(&mut self.spans.places, p.index(), line_no);
        self.places.insert(name.to_owned(), p);
        p
    }

    fn parse_marking(&mut self, line_no: usize, line: &str) -> Result<(), StgError> {
        let open = line.find('{');
        let close = line.rfind('}');
        let (open, close) = match (open, close) {
            (Some(o), Some(c)) if o < c => (o, c),
            _ => return Err(Self::err(line_no, ".marking needs `{ ... }`")),
        };
        let body = &line[open + 1..close];
        let mut rest = body.trim();
        while !rest.is_empty() {
            if let Some(stripped) = rest.strip_prefix('<') {
                let end = stripped
                    .find('>')
                    .ok_or_else(|| Self::err(line_no, "unterminated `<t1,t2>` marking token"))?;
                let inner = &stripped[..end];
                let (a, b) = inner.split_once(',').ok_or_else(|| {
                    Self::err(
                        line_no,
                        format!("marking token `<{inner}>` needs two comma-separated transitions"),
                    )
                })?;
                let (a, b) = (a.trim(), b.trim());
                let key = (a.to_owned(), b.to_owned());
                let place = self.implicit.get(&key).copied().ok_or_else(|| {
                    Self::err(
                        line_no,
                        format!("no implicit place between `{a}` and `{b}`"),
                    )
                })?;
                self.builder.mark(place);
                rest = stripped[end + 1..].trim_start();
            } else {
                let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
                let token = &rest[..end];
                let place = self.places.get(token).copied().ok_or_else(|| {
                    Self::err(line_no, format!("unknown place `{token}` in marking"))
                })?;
                self.builder.mark(place);
                rest = rest[end..].trim_start();
            }
        }
        Ok(())
    }

    fn parse_initial(&mut self, line_no: usize, line: &str) -> Result<(), StgError> {
        let open = line.find('{');
        let close = line.rfind('}');
        let (open, close) = match (open, close) {
            (Some(o), Some(c)) if o < c => (o, c),
            _ => return Err(Self::err(line_no, ".initial needs `{ a=0 b=1 ... }`")),
        };
        for assign in line[open + 1..close].split_whitespace() {
            let (name, value) = assign
                .split_once('=')
                .ok_or_else(|| Self::err(line_no, format!("malformed assignment `{assign}`")))?;
            let value = match value {
                "0" => false,
                "1" => true,
                other => {
                    return Err(Self::err(
                        line_no,
                        format!("initial value must be 0 or 1, got `{other}`"),
                    ))
                }
            };
            if !self.signal_ids.contains_key(name) {
                return Err(StgError::UnknownSignal {
                    name: name.to_owned(),
                });
            }
            if self.initial.insert(name.to_owned(), value).is_some() {
                return Err(Self::err(
                    line_no,
                    format!("duplicate initial value for `{name}`"),
                ));
            }
        }
        Ok(())
    }

    fn finish(self, strict: bool) -> Result<(Stg, SourceSpans), StgError> {
        let mut builder = self.builder;
        if !self.initial.is_empty() {
            let mut signals: Vec<(String, SignalId)> = self.signal_ids.into_iter().collect();
            signals.sort_by_key(|(_, id)| *id);
            let mut bits = Vec::with_capacity(signals.len());
            for (name, _) in &signals {
                match self.initial.get(name) {
                    Some(&v) => bits.push(v),
                    None => {
                        return Err(StgError::PartialInitialValues {
                            declared: self.initial.len(),
                            signals: signals.len(),
                        })
                    }
                }
            }
            builder.set_initial_code(BinaryCode::from_bits(bits));
        }
        let stg = if strict {
            builder.build()?
        } else {
            builder.build_unvalidated()?
        };
        Ok((stg, self.spans))
    }
}

/// Splits a transition token `name+`, `name-`, `name+/2` into
/// `(signal name, polarity)`.
fn signal_of_token(token: &str) -> Option<(&str, Polarity)> {
    let body = match token.find('/') {
        Some(pos) => &token[..pos],
        None => token,
    };
    if let Some(name) = body.strip_suffix('+') {
        (!name.is_empty()).then_some((name, Polarity::Rise))
    } else if let Some(name) = body.strip_suffix('-') {
        (!name.is_empty()).then_some((name, Polarity::Fall))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "
.model tiny
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.initial { a=0 b=0 }
.end
";

    #[test]
    fn parses_tiny_model() {
        let stg = parse_g(TINY).expect("parses");
        assert_eq!(stg.name(), "tiny");
        assert_eq!(stg.signal_count(), 2);
        assert_eq!(stg.net().transition_count(), 4);
        assert_eq!(stg.net().place_count(), 4);
        assert_eq!(stg.net().initial_marking().len(), 1);
        assert_eq!(
            stg.initial_code().map(ToString::to_string).as_deref(),
            Some("00")
        );
        let a = stg.signal_by_name("a").expect("a");
        assert_eq!(stg.signal_kind(a), SignalKind::Input);
    }

    #[test]
    fn explicit_places_and_fanout() {
        let text = "
.model fanout
.inputs a
.outputs b c
.graph
p0 a+
a+ b+ c+
b+ p1
c+ p1
p1 a-
a- b-
b- c-
c- p0
.marking { p0 }
.initial { a=0 b=0 c=0 }
.end
";
        let stg = parse_g(text).expect("parses");
        assert_eq!(stg.signal_count(), 3);
        assert!(stg.net().place_count() >= 2);
        let a_plus = stg
            .net()
            .transitions()
            .find(|&t| stg.transition_label_string(t) == "a+")
            .expect("a+ exists");
        assert_eq!(stg.net().postset(a_plus).len(), 2);
    }

    #[test]
    fn indexed_instances_are_distinct() {
        let text = "
.model idx
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b+/2
b+/2 a+
.marking { <b+/2,a+> }
.end
";
        let stg = parse_g(text).expect("parses");
        let b = stg.signal_by_name("b").expect("b");
        assert_eq!(stg.transitions_of(b).len(), 2);
        // No .initial section: code left for inference.
        assert!(stg.initial_code().is_none());
    }

    #[test]
    fn dummy_transitions() {
        let text = "
.model dum
.inputs a
.dummy eps
.graph
a+ eps
eps a-
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(text).expect("parses");
        assert!(!stg.is_fully_labelled());
    }

    #[test]
    fn error_unknown_signal_in_marking() {
        let text = "
.model bad
.inputs a
.graph
a+ z+
z+ a+
.marking { <z+,a+> }
.end
";
        // `z+` is not declared, so it is classified as a place name; the
        // marking token `<z+,a+>` then references a non-existent implicit
        // place.
        assert!(parse_g(text).is_err());
    }

    #[test]
    fn error_missing_marking() {
        let text = "
.model nomark
.inputs a
.graph
a+ a-
a- a+
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { message, .. }) if message.contains("marking")
        ));
    }

    #[test]
    fn error_arc_outside_graph() {
        let text = "
.model early
.inputs a
a+ a-
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { line: 4, .. })
        ));
    }

    #[test]
    fn error_partial_initial() {
        let text = "
.model partial
.inputs a b
.graph
a+ a-
a- a+
b+ b-
b- b+
.marking { <a-,a+> <b-,b+> }
.initial { a=0 }
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::PartialInitialValues { .. })
        ));
    }

    #[test]
    fn error_place_to_place_arc() {
        let text = "
.model pp
.inputs a
.graph
p0 p1
.marking { p0 }
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { message, .. }) if message.contains("two places")
        ));
    }

    #[test]
    fn error_unknown_directive() {
        let text = ".frobnicate x\n.marking { }\n";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { message, .. }) if message.contains("unknown directive")
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
# top comment
.model c   # trailing
.inputs a

.graph
a+ a-   # arc
a- a+
.marking { <a-,a+> }
.end
";
        let stg = parse_g(text).expect("parses");
        assert_eq!(stg.name(), "c");
    }

    #[test]
    fn token_classification() {
        assert_eq!(signal_of_token("a+"), Some(("a", Polarity::Rise)));
        assert_eq!(signal_of_token("ack-"), Some(("ack", Polarity::Fall)));
        assert_eq!(signal_of_token("a+/2"), Some(("a", Polarity::Rise)));
        assert_eq!(signal_of_token("p0"), None);
        assert_eq!(signal_of_token("+"), None);
    }

    #[test]
    fn error_duplicate_signal_declarations() {
        for decls in [
            ".inputs a\n.outputs a",
            ".inputs a a",
            ".inputs a\n.internal a",
            ".inputs a\n.dummy a",
            ".dummy e e",
        ] {
            let text = format!("{decls}\n.graph\na+ a-\na- a+\n.marking {{ <a-,a+> }}\n.end\n");
            assert!(
                matches!(parse_g(&text), Err(StgError::DuplicateSignal { .. })),
                "accepted {decls:?}"
            );
        }
    }

    #[test]
    fn error_invalid_signal_names() {
        for name in ["a+", "x/2", "<p>", "a=b", ".x"] {
            let text = format!(".inputs {name}\n.graph\n.marking {{ }}\n.end\n");
            assert!(
                matches!(parse_g(&text), Err(StgError::Parse { .. })),
                "accepted name {name:?}"
            );
        }
    }

    #[test]
    fn error_undeclared_transition_in_arc() {
        // `z+` uses transition syntax for an undeclared signal: a structured
        // error, not a silently created place named `z+`.
        let text = "
.model bad
.inputs a
.graph
a+ z+
z+ a-
a- a+
.marking { <a-,a+> }
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::UnknownSignal { name }) if name == "z"
        ));
    }

    #[test]
    fn error_malformed_instance_suffixes() {
        for token in ["a+/", "a+/x", "a+/2b", "a-/ 2"] {
            let text = format!(".model bad\n.inputs a\n.graph\na+ {token}\n.marking {{ }}\n.end\n");
            assert!(parse_g(&text).is_err(), "accepted suffix {token:?}");
        }
        // A slash on a place-shaped token is instance syntax misuse.
        let text = ".model bad\n.inputs a\n.graph\na+ p/0\n.marking { }\n.end\n";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { message, .. }) if message.contains("instance syntax")
        ));
    }

    #[test]
    fn dummy_instance_suffixes_are_distinct_transitions() {
        let text = "
.model dum2
.inputs a
.dummy eps
.graph
a+ eps
eps a-
a- eps/2
eps/2 a+
.marking { <eps/2,a+> }
.end
";
        let stg = parse_g(text).expect("parses");
        // Two distinct dummy instances plus a+/a-.
        assert_eq!(stg.net().transition_count(), 4);
        assert!(!stg.is_fully_labelled());
        // A malformed dummy instance suffix is still rejected.
        let bad = text.replace("eps/2", "eps/x");
        assert!(matches!(
            parse_g(&bad),
            Err(StgError::Parse { message, .. }) if message.contains("instance suffix")
        ));
    }

    #[test]
    fn error_bare_polarity_token() {
        let text = ".model bad\n.inputs a\n.graph\na+ +\n.marking { }\n.end\n";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { message, .. }) if message.contains("malformed transition")
        ));
    }

    #[test]
    fn error_marking_token_without_comma() {
        let text = "
.model bad
.inputs a
.graph
a+ a-
a- a+
.marking { <a-a+> }
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { message, .. }) if message.contains("comma")
        ));
    }

    #[test]
    fn error_initial_value_for_undeclared_signal() {
        let text = "
.model bad
.inputs a
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.initial { a=0 z=1 }
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::UnknownSignal { name }) if name == "z"
        ));
    }

    #[test]
    fn error_duplicate_initial_value() {
        let text = "
.model bad
.inputs a
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.initial { a=0 a=1 }
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { message, .. }) if message.contains("duplicate initial")
        ));
    }

    #[test]
    fn bad_initial_value_rejected() {
        let text = "
.model badinit
.inputs a
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.initial { a=2 }
.end
";
        assert!(matches!(
            parse_g(text),
            Err(StgError::Parse { message, .. }) if message.contains("0 or 1")
        ));
    }
}
