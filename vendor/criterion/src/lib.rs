//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, providing the subset of the API this workspace uses.
//!
//! The build container has no crates.io access, so the real criterion cannot
//! be fetched. This shim keeps `cargo bench` working end to end: each
//! benchmark is warmed up briefly, then timed over a fixed measurement
//! window, and the mean iteration time is printed. There are no statistics,
//! plots, or baseline comparisons.
//!
//! Supported surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId::new`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Warm-up time per benchmark.
const WARM_UP: Duration = Duration::from_millis(300);
/// Measurement time per benchmark.
const MEASURE: Duration = Duration::from_millis(1500);

/// Entry point handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Times `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier for `function` measured at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timer handle: call [`Bencher::iter`] with the code under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly for the measurement window, recording total time
    /// and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (not recorded).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARM_UP {
            hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE {
            hint::black_box(f());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let mean = bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
    println!("  {label}: {mean:?}/iter ({} iters)", bencher.iters);
}

/// Opaque value barrier re-exported for benchmark bodies.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Declares a group function runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
