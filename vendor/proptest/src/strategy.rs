//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use: ranges, tuples, [`Just`], [`any`], [`Map`], [`Union`].

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRunner;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`new_value`) plus sized combinators, like the real
/// crate's split between `Strategy` and its extension methods.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the runner's random stream.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Generated-value mapper returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let i = runner.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(runner)
    }
}

/// Strategy for "any value of `T`" ([`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates an arbitrary value of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn new_value(&self, runner: &mut TestRunner) -> u64 {
        runner.next_u64()
    }
}

macro_rules! any_small_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}
any_small_uint!(u8, u16, u32, usize);

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + runner.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + runner.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
