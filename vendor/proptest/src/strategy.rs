//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use: ranges, tuples, [`Just`], [`any`], [`Map`], [`Union`].

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRunner;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe core (`new_value`) plus sized combinators, like the real
/// crate's split between `Strategy` and its extension methods.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the runner's random stream.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Candidate simplifications of a failing `value`, simplest first.
    /// The default — no candidates — is what non-invertible combinators
    /// ([`Map`], [`Union`], [`Just`]) keep: the greedy driver
    /// ([`shrink_failure`]) simply stops there.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Greedily minimises a failing input: repeatedly replaces `value` with
/// the first [`Strategy::shrink`] candidate that still fails (per
/// `fails`), until no candidate reproduces the failure or the step bound
/// runs out. Returns the smallest failing value found — `value` itself
/// when nothing simpler fails.
pub fn shrink_failure<S: Strategy>(
    strat: &S,
    mut value: S::Value,
    mut fails: impl FnMut(&S::Value) -> bool,
) -> S::Value {
    // Halving converges in ~64 steps per integer; the bound only guards
    // against a pathological strategy whose candidates never converge.
    for _ in 0..1024 {
        let Some(smaller) = strat.shrink(&value).into_iter().find(|c| fails(c)) else {
            return value;
        };
        value = smaller;
    }
    value
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Generated-value mapper returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let i = runner.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(runner)
    }
}

/// Strategy for "any value of `T`" ([`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates an arbitrary value of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn new_value(&self, runner: &mut TestRunner) -> u64 {
        runner.next_u64()
    }
    fn shrink(&self, value: &u64) -> Vec<u64> {
        shrink_towards(*value, 0)
    }
}

macro_rules! any_small_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_towards(u64::from(*value as u64), 0)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}
any_small_uint!(u8, u16, u32, usize);

/// Integer shrink candidates, simplest first: the target itself, the
/// halfway point, then one step down. Halving alone can overshoot past the
/// true minimum and stall (from 23 with minimum 17, halving lands on 11);
/// the decrement rung lets the greedy driver walk the final stretch.
fn shrink_towards(value: u64, target: u64) -> Vec<u64> {
    if value == target {
        return Vec::new();
    }
    let mut out = vec![target];
    let half = target + (value - target) / 2;
    if half != target {
        out.push(half);
    }
    if value - 1 != half && value - 1 != target {
        out.push(value - 1);
    }
    out
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + runner.below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_towards(*value as u64, self.start as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + runner.below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_towards(*value as u64, *self.start() as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
            #[allow(non_snake_case)]
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                let strategies = self;
                tuple_strategy!(@shrink strategies value out ($($name),+));
                out
            }
        }
    )*};
    (@shrink $strats:ident $value:ident $out:ident ($($name:ident),+)) => {
        let ($($name,)+) = $strats;
        #[allow(non_snake_case)]
        {
            tuple_strategy!(@each $value $out ($($name),+) ($($name),+));
        }
    };
    (@each $value:ident $out:ident ($($all:ident),+) ($head:ident $(, $rest:ident)*)) => {
        {
            let idx_value = &tuple_strategy!(@pick $value ($($all),+) $head);
            for candidate in $head.shrink(idx_value) {
                let mut next = $value.clone();
                *(&mut tuple_strategy!(@pick next ($($all),+) $head)) = candidate;
                $out.push(next);
            }
        }
        tuple_strategy!(@each $value $out ($($all),+) ($($rest),*));
    };
    (@each $value:ident $out:ident ($($all:ident),+) ()) => {};
    (@pick $value:ident (A) A) => { $value.0 };
    (@pick $value:ident (A, B) A) => { $value.0 };
    (@pick $value:ident (A, B) B) => { $value.1 };
    (@pick $value:ident (A, B, C) A) => { $value.0 };
    (@pick $value:ident (A, B, C) B) => { $value.1 };
    (@pick $value:ident (A, B, C) C) => { $value.2 };
    (@pick $value:ident (A, B, C, D) A) => { $value.0 };
    (@pick $value:ident (A, B, C, D) B) => { $value.1 };
    (@pick $value:ident (A, B, C, D) C) => { $value.2 };
    (@pick $value:ident (A, B, C, D) D) => { $value.3 };
    (@pick $value:ident (A, B, C, D, E) A) => { $value.0 };
    (@pick $value:ident (A, B, C, D, E) B) => { $value.1 };
    (@pick $value:ident (A, B, C, D, E) C) => { $value.2 };
    (@pick $value:ident (A, B, C, D, E) D) => { $value.3 };
    (@pick $value:ident (A, B, C, D, E) E) => { $value.4 };
    (@pick $value:ident (A, B, C, D, E, F) A) => { $value.0 };
    (@pick $value:ident (A, B, C, D, E, F) B) => { $value.1 };
    (@pick $value:ident (A, B, C, D, E, F) C) => { $value.2 };
    (@pick $value:ident (A, B, C, D, E, F) D) => { $value.3 };
    (@pick $value:ident (A, B, C, D, E, F) E) => { $value.4 };
    (@pick $value:ident (A, B, C, D, E, F) F) => { $value.5 };
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn shrink_failure_bisects_an_integer_to_its_minimal_failing_value() {
        // Failing predicate: v >= 17. Greedy bisection from anywhere in the
        // range must land exactly on 17.
        let strat = 0..100u32;
        assert_eq!(shrink_failure(&strat, 93, |&v| v >= 17), 17);
        assert_eq!(shrink_failure(&strat, 17, |&v| v >= 17), 17);
        // A value that everything-below also fails shrinks to the range floor.
        let strat = 5..100u32;
        assert_eq!(shrink_failure(&strat, 80, |_| true), 5);
    }

    #[test]
    fn shrink_failure_drops_vector_elements_down_to_the_size_floor() {
        let strat = collection::vec(0..10u32, 2..=6);
        let value = vec![3, 7, 1, 9, 2];
        // "Contains a 7" is preserved by dropping everything else, but the
        // size floor of 2 keeps one bystander around.
        let min = shrink_failure(&strat, value, |v| v.contains(&7));
        assert_eq!(min.len(), 2);
        assert!(min.contains(&7));
        // The surviving bystander also shrank to the element floor.
        assert!(min.contains(&0), "bystander should shrink to 0: {min:?}");
    }

    #[test]
    fn tuple_shrink_moves_one_component_at_a_time() {
        let strat = (0..10u32, 0..10u32);
        let candidates = strat.shrink(&(4, 6));
        assert!(!candidates.is_empty());
        for (a, b) in &candidates {
            let moved_a = *a != 4;
            let moved_b = *b != 6;
            assert!(moved_a ^ moved_b, "exactly one side moves: ({a}, {b})");
        }
        // Greedy driver over the pair: minimise while the sum stays >= 5.
        let min = shrink_failure(&strat, (4, 6), |&(a, b)| a + b >= 5);
        assert_eq!(min.0 + min.1, 5, "sum should be driven to the boundary");
    }

    #[test]
    fn bool_and_fixed_point_shrinks_terminate() {
        assert_eq!(any::<bool>().shrink(&true), vec![false]);
        assert!(any::<bool>().shrink(&false).is_empty());
        // Already-minimal values yield no candidates: the driver returns
        // them unchanged immediately.
        let strat = 3..9u8;
        assert!(strat.shrink(&3).is_empty());
        assert_eq!(shrink_failure(&strat, 3, |_| true), 3);
        // Non-invertible combinators keep the empty default.
        let mapped = (0..10u32).prop_map(|v| v * 2);
        assert!(mapped.shrink(&8).is_empty());
    }
}
