//! Collection strategies: [`vec`] with proptest's flexible size argument.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;

/// A length specification: an exact size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + runner.below(span) as usize;
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Dropping whole elements first (respecting the lower size bound)…
        if value.len() > self.size.lo {
            for i in 0..value.len() {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // …then shrinking elements in place, one at a time.
        for (i, v) in value.iter().enumerate() {
            for candidate in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}
