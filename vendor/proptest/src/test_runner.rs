//! Deterministic case runner: configuration, failure type, and the
//! xorshift-based random source strategies draw from.

use std::fmt;

/// Per-test configuration (`ProptestConfig` in the real crate).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic random source handed to strategies.
///
/// Seeded from the test name so different properties see different streams,
/// and re-mixed per case so cases are independent; runs are reproducible
/// from build to build.
#[derive(Debug)]
pub struct TestRunner {
    seed: u64,
    state: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(_config: &Config, name: &str) -> Self {
        // FNV-1a over the test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            seed,
            state: seed | 1,
        }
    }

    /// Re-seeds the stream for case number `case`.
    pub fn start_case(&mut self, case: u32) {
        // SplitMix64-style mix of (seed, case).
        let mut z = self
            .seed
            .wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = (z ^ (z >> 31)) | 1;
    }

    /// Next raw 64 pseudo-random bits (xorshift64).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for the small bounds used here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
