//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset of the API this workspace uses.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real proptest cannot be fetched. This shim keeps the property tests
//! compiling and *meaningfully running*: every `proptest!` test executes its
//! configured number of cases against pseudo-random inputs drawn from a
//! deterministic xorshift generator (seeded per test and per case), so runs
//! are reproducible. Greedy shrinking is available via
//! [`strategy::Strategy::shrink`] and the [`strategy::shrink_failure`]
//! driver (integers halve toward their lower bound, vectors drop elements);
//! the `proptest!` macro itself does **not** shrink — on failure it panics
//! with the generated case's values unminimised — and regressions are not
//! persisted.
//!
//! Supported surface:
//!
//! * [`Strategy`] with `prop_map`, plus strategies for ranges, tuples,
//!   [`Just`], [`any`], and [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::TestCaseError`] and
//!   [`test_runner::Config`](test_runner::Config) (`ProptestConfig`).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Generates `#[test]` functions that run a property over many generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            // Re-emit the captured attributes (the user writes `#[test]`,
            // and possibly `#[ignore]` etc., inside the macro block — real
            // proptest behaves the same way, keeping the swap drop-in).
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(&config, stringify!($name));
                for case in 0..config.cases {
                    runner.start_case(case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut runner);
                    )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest '{}' failed at case {case}: {e}\ninputs (unshrunk): {:#?}",
                            stringify!($name),
                            ($(&$arg,)*)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($strat)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}

/// Like `assert!`, but fails the current proptest case instead of panicking
/// directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, but fails the current proptest case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}
