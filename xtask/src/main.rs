//! Repository automation (`cargo xtask`-style) entry point.
//!
//! Subcommands:
//!
//! * `forbid-panics` — CI gate: non-test library code of the algorithmic
//!   crates must not call `.unwrap()` or `.expect(…)`. Every fallible path
//!   there either returns a typed error or matches exhaustively with an
//!   `unreachable!` carrying the invariant; panicking adapters are the one
//!   idiom the gate bans, because a poisoned synthesis run must surface as
//!   an `Err` the caller can report, not a backtrace.
//!
//! The scanner is intentionally textual (no syn/proc-macro dependencies in
//! the offline build): it walks `crates/<crate>/src/**/*.rs`, drops `//`
//! comment lines, and ignores everything from a `#[cfg(test)]` line to the
//! end of file — in this codebase test modules are always the last item of
//! a file, which the gate itself double-checks by refusing any occurrence
//! of `#[cfg(test)]` that is followed by a non-indented `}` before EOF less
//! than the final line.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose library code the panic gate covers. `bench` (binaries,
/// process-exit on bad CLI args is fine) and the vendored shims are out of
/// scope by design.
const GATED_CRATES: &[&str] = &[
    "stg",
    "petri",
    "stategraph",
    "bdd",
    "core",
    "cubes",
    "unfolding",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("forbid-panics") => forbid_panics(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: forbid-panics");
            ExitCode::from(2)
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- <task>\n\ntasks:\n  forbid-panics");
            ExitCode::from(2)
        }
    }
}

fn forbid_panics() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for krate in GATED_CRATES {
        collect_rs_files(&root.join("crates").join(krate).join("src"), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        scan_file(file, &text, &mut violations);
    }

    if violations.is_empty() {
        println!("forbid-panics: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!(
            "forbid-panics: {} violation(s) in non-test library code — return a typed \
             error or match exhaustively instead",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Scans one file's text, pushing `path:line: …` strings for every
/// `.unwrap()` / `.expect(` outside comments and test code.
fn scan_file(path: &Path, text: &str, violations: &mut Vec<String>) {
    let mut in_tests = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            // Test modules are the last item of every file in this
            // codebase, so the rest of the file is out of scope.
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        let code = strip_comments(line);
        for needle in [".unwrap()", ".expect("] {
            if let Some(col) = code.find(needle) {
                violations.push(format!(
                    "{}:{}:{}: `{}`",
                    path.display(),
                    idx + 1,
                    col + 1,
                    needle
                ));
            }
        }
    }
}

/// Removes `//` line comments (good enough for this codebase: no `//`
/// inside string literals on lines that also call unwrap/expect).
fn strip_comments(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace root: this binary lives in `<root>/xtask`, and CI runs it
/// via `cargo run -p xtask` from anywhere inside the workspace.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent() {
        Some(parent) => parent.to_path_buf(),
        None => manifest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_violations_outside_tests() {
        let text = "fn f() {\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let mut v = Vec::new();
        scan_file(Path::new("demo.rs"), text, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("demo.rs:2:"));
    }

    #[test]
    fn comments_are_ignored() {
        let text = "// x.unwrap() in a comment\nlet a = b; // trailing .expect( too\n";
        let mut v = Vec::new();
        scan_file(Path::new("demo.rs"), text, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn gated_crates_are_clean() {
        // The gate, self-applied: the same check CI runs.
        let root = workspace_root();
        let mut files = Vec::new();
        for krate in GATED_CRATES {
            collect_rs_files(&root.join("crates").join(krate).join("src"), &mut files);
        }
        assert!(!files.is_empty(), "no files found — wrong root?");
        let mut violations = Vec::new();
        for file in &files {
            let text = std::fs::read_to_string(file).expect("readable source");
            scan_file(file, &text, &mut violations);
        }
        assert!(
            violations.is_empty(),
            "panicking adapters in library code:\n{}",
            violations.join("\n")
        );
    }
}
