//! Repository automation (`cargo xtask`-style) entry point.
//!
//! Subcommands:
//!
//! * `forbid-panics` — CI gate: non-test library code of the algorithmic
//!   crates must not call `.unwrap()`, `.expect(…)`, `panic!(…)` or a bare
//!   message-less `unreachable!()`. Every fallible path there either
//!   returns a typed error, prechecks its contract with an `assert!`
//!   carrying the message, or matches exhaustively with an `unreachable!`
//!   carrying the invariant; panicking adapters and anonymous dead arms are
//!   the idioms the gate bans, because a poisoned synthesis run must
//!   surface as an `Err` the caller can report (or at worst a panic that
//!   names its invariant), not a bare backtrace.
//! * `forbid-unsafe` — CI gate: the same crates must not contain `unsafe`
//!   blocks or functions. Every library crate already carries
//!   `#![forbid(unsafe_code)]`; the textual gate keeps that true even if an
//!   attribute is dropped in a refactor, without waiting for a reviewer to
//!   notice.
//! * `bench` — symbolic-engine scaling harness: runs the SG flow's BDD
//!   engine over the large `benchmarks/*.g` specifications at
//!   `bdd_threads` ∈ {1, 2, 4}, cross-checks that gate equations and
//!   kernel operation counts are identical at every thread count, and
//!   prints one row per run (wall ms, peak live nodes, op counts). With
//!   `--json` the same rows are written to `BENCH_symbolic.json` at the
//!   workspace root. Wall-clock speedup is only visible on multi-core
//!   hosts; the op counts and peak live nodes are machine-independent, so
//!   they are what CI pins on single-CPU runners.
//!
//! The scanner is intentionally textual (no syn/proc-macro dependencies in
//! the offline build): it walks `crates/<crate>/src/**/*.rs`, drops `//`
//! comment lines, and ignores everything from a `#[cfg(test)]` line to the
//! end of file — in this codebase test modules are always the last item of
//! a file, which the gate itself double-checks by refusing any occurrence
//! of `#[cfg(test)]` that is followed by a non-indented `}` before EOF less
//! than the final line.

mod bench;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose library code the gates cover. `bench` (binaries,
/// process-exit on bad CLI args is fine) and the vendored shims are out of
/// scope by design.
const GATED_CRATES: &[&str] = &[
    "stg",
    "petri",
    "stategraph",
    "bdd",
    "core",
    "cubes",
    "unfolding",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("forbid-panics") => run_gate(
            "forbid-panics",
            scan_panics,
            "return a typed error or match exhaustively instead",
        ),
        Some("forbid-unsafe") => run_gate(
            "forbid-unsafe",
            scan_unsafe,
            "the library crates are `#![forbid(unsafe_code)]`; keep them that way",
        ),
        Some("bench") => bench::run(args.collect()),
        Some(other) => {
            eprintln!(
                "unknown task `{other}`; available tasks: forbid-panics, forbid-unsafe, bench"
            );
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- <task>\n\ntasks:\n  forbid-panics\n  forbid-unsafe\n  bench [--json] [--threads 1,2,4] [name …]"
            );
            ExitCode::from(2)
        }
    }
}

/// Walks every gated crate's sources through `scan`, reporting violations
/// with `hint` and the conventional exit codes (0 clean, 1 violations,
/// 2 operational error).
fn run_gate(name: &str, scan: fn(&Path, &str, &mut Vec<String>), hint: &str) -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for krate in GATED_CRATES {
        collect_rs_files(&root.join("crates").join(krate).join("src"), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        scan(file, &text, &mut violations);
    }

    if violations.is_empty() {
        println!("{name}: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!(
            "{name}: {} violation(s) in non-test library code — {hint}",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Scans one file's text, pushing `path:line: …` strings for every
/// `.unwrap()` / `.expect(` / `panic!(` / bare `unreachable!()` outside
/// comments and test code. `unreachable!` *with* a message is the blessed
/// idiom for dead match arms, so only the message-less form is flagged;
/// `panic!` is flagged unconditionally — contract prechecks belong in an
/// `assert!`, which keeps the message and reads as a contract.
fn scan_panics(path: &Path, text: &str, violations: &mut Vec<String>) {
    for (idx, code) in library_code_lines(text) {
        for needle in [".unwrap()", ".expect(", "panic!(", "unreachable!()"] {
            if let Some(col) = code.find(needle) {
                violations.push(format!(
                    "{}:{}:{}: `{}`",
                    path.display(),
                    idx + 1,
                    col + 1,
                    needle
                ));
            }
        }
    }
}

/// Scans one file's text for the `unsafe` keyword outside comments and test
/// code. Word-boundary matching keeps `#![forbid(unsafe_code)]` (and
/// identifiers like `unsafe_net_reported`) out of scope: only a bare
/// `unsafe` token — a block or function qualifier — violates the gate.
fn scan_unsafe(path: &Path, text: &str, violations: &mut Vec<String>) {
    for (idx, code) in library_code_lines(text) {
        let mut from = 0;
        while let Some(pos) = code[from..].find("unsafe") {
            let col = from + pos;
            let before_ok = col == 0
                || !code[..col]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after_ok = !code[col + "unsafe".len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                violations.push(format!(
                    "{}:{}:{}: `unsafe`",
                    path.display(),
                    idx + 1,
                    col + 1
                ));
            }
            from = col + "unsafe".len();
        }
    }
}

/// The non-test, comment-stripped lines of a source file, with their
/// 0-based indices — the shared input of every textual gate.
fn library_code_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut in_tests = false;
    text.lines().enumerate().filter_map(move |(idx, line)| {
        if line.trim_start().starts_with("#[cfg(test)]") {
            // Test modules are the last item of every file in this
            // codebase, so the rest of the file is out of scope.
            in_tests = true;
        }
        (!in_tests).then(|| (idx, strip_comments(line)))
    })
}

/// Removes `//` line comments (good enough for this codebase: no `//`
/// inside string literals on lines that also trip a gate needle).
fn strip_comments(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The workspace root: this binary lives in `<root>/xtask`, and CI runs it
/// via `cargo run -p xtask` from anywhere inside the workspace.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent() {
        Some(parent) => parent.to_path_buf(),
        None => manifest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_violations_outside_tests() {
        let text = "fn f() {\n    x.unwrap();\n}\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let mut v = Vec::new();
        scan_panics(Path::new("demo.rs"), text, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("demo.rs:2:"));
    }

    #[test]
    fn comments_are_ignored() {
        let text = "// x.unwrap() in a comment\nlet a = b; // trailing .expect( too\n// panic!(\"doc\") and unreachable!() in prose\n";
        let mut v = Vec::new();
        scan_panics(Path::new("demo.rs"), text, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn bare_panics_and_anonymous_unreachable_are_flagged() {
        let text = "fn f() {\n    panic!(\"even with a message\");\n}\nfn g(x: u8) {\n    match x {\n        0 => {}\n        _ => unreachable!(),\n    }\n}\n";
        let mut v = Vec::new();
        scan_panics(Path::new("demo.rs"), text, &mut v);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].starts_with("demo.rs:2:") && v[0].contains("panic!("));
        assert!(v[1].starts_with("demo.rs:7:") && v[1].contains("unreachable!()"));
    }

    #[test]
    fn unreachable_with_an_invariant_message_is_blessed() {
        let text = "fn f(x: u8) {\n    match x {\n        0 => {}\n        _ => unreachable!(\"x is prefiltered to zero\"),\n    }\n}\n";
        let mut v = Vec::new();
        scan_panics(Path::new("demo.rs"), text, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unsafe_blocks_are_flagged_but_the_attribute_is_not() {
        let text = "#![forbid(unsafe_code)]\nfn f() {\n    unsafe { go() }\n}\nunsafe fn g() {}\nfn unsafe_sounding_name() {}\n";
        let mut v = Vec::new();
        scan_unsafe(Path::new("demo.rs"), text, &mut v);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].starts_with("demo.rs:3:"));
        assert!(v[1].starts_with("demo.rs:5:"));
    }

    #[test]
    fn unsafe_in_tests_and_comments_is_ignored() {
        let text =
            "// unsafe in a comment\n#[cfg(test)]\nmod tests {\n    fn f() { unsafe { } }\n}\n";
        let mut v = Vec::new();
        scan_unsafe(Path::new("demo.rs"), text, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn gated_crates_are_clean() {
        // Both gates, self-applied: the same checks CI runs.
        let root = workspace_root();
        let mut files = Vec::new();
        for krate in GATED_CRATES {
            collect_rs_files(&root.join("crates").join(krate).join("src"), &mut files);
        }
        assert!(!files.is_empty(), "no files found — wrong root?");
        let mut violations = Vec::new();
        for file in &files {
            let text = std::fs::read_to_string(file).expect("readable source");
            scan_panics(file, &text, &mut violations);
            scan_unsafe(file, &text, &mut violations);
        }
        assert!(
            violations.is_empty(),
            "gate violations in library code:\n{}",
            violations.join("\n")
        );
    }
}
