//! `cargo xtask bench` — symbolic-engine scaling harness.
//!
//! Runs the SG flow's BDD engine over the large `benchmarks/*.g`
//! specifications at several `bdd_threads` settings and reports, per run:
//! end-to-end wall clock, the reach/extract/minimise split (extraction is
//! the ISOP front end turning the reachable BDD into per-signal implicit
//! sets), peak live nodes at the fixpoint checkpoints, and the
//! deterministic kernel operation counts.
//! Every multi-threaded run is cross-checked against the single-threaded
//! reference: gate equations (byte-for-byte), state counts and op counts
//! must be identical, so the harness doubles as a determinism gate.
//!
//! With `--json`, the rows are also written to `BENCH_symbolic.json` at
//! the workspace root. Wall-clock scaling needs a multi-core host — on a
//! single-CPU runner the threaded rows mostly measure scheduling overhead
//! — which is why the JSON records `host_cpus` alongside the timings and
//! why CI pins the machine-independent columns (op counts, peak live
//! nodes, equations) rather than the wall clock.

use std::process::ExitCode;
use std::time::Instant;

use si_stategraph::{
    check_implementable, synthesize_from_on_off_sets, ReorderPolicy, SgEngine, SgSynthesisOptions,
    SymbolicSg,
};
use si_stg::parse_g;

/// Default benchmark set: the specifications the concurrent-engine work
/// targets (wide enough for the parallel apply to matter) plus one small
/// control.
const DEFAULT_BENCHES: &[&str] = &[
    "muller_pipeline_20",
    "muller_pipeline_24",
    "wide_arbiter_20",
    "token_ring_12",
];

/// Determinism reference from the single-threaded run: equations, state
/// count, `(ite, exists, and_exists)` op counts.
type Fingerprint = (Vec<String>, u128, (u64, u64, u64));

/// One measured run.
struct Row {
    benchmark: String,
    bdd_threads: usize,
    wall_ms: f64,
    reach_ms: f64,
    extract_ms: f64,
    states: u128,
    peak_live_nodes: usize,
    peak_pool: usize,
    ops_ite: u64,
    ops_exists: u64,
    ops_and_exists: u64,
    literals: usize,
    matches_reference: bool,
}

pub fn run(args: Vec<String>) -> ExitCode {
    let mut json = false;
    let mut threads: Vec<usize> = vec![1, 2, 4];
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--threads" => {
                let Some(list) = iter.next() else {
                    eprintln!("--threads needs a comma-separated list, e.g. --threads 1,2,4");
                    return ExitCode::from(2);
                };
                match list.split(',').map(str::parse).collect() {
                    Ok(t) => threads = t,
                    Err(e) => {
                        eprintln!("bad --threads list `{list}`: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            name => names.push(name.trim_end_matches(".g").to_owned()),
        }
    }
    if names.is_empty() {
        names = DEFAULT_BENCHES.iter().map(|s| (*s).to_owned()).collect();
    }
    if threads.is_empty() || threads[0] != 1 {
        // The single-threaded run is the determinism reference; make sure
        // it exists and comes first.
        threads.retain(|&t| t != 1);
        threads.insert(0, 1);
    }

    let root = crate::workspace_root();
    let mut rows: Vec<Row> = Vec::new();
    println!(
        "{:<20} {:>7} {:>9} {:>9} {:>9} {:>12} {:>10} {:>8} {:>8} {:>5}",
        "benchmark",
        "threads",
        "wall-ms",
        "reach-ms",
        "ext-ms",
        "states",
        "peak-live",
        "ite",
        "exists",
        "ok"
    );
    for name in &names {
        let path = root.join("benchmarks").join(format!("{name}.g"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let stg = match parse_g(&text) {
            Ok(stg) => stg,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                return ExitCode::from(2);
            }
        };

        // Reference fingerprint from the single-threaded run, filled on the
        // first iteration: equations, state count, op counts.
        let mut reference: Option<Fingerprint> = None;
        for &t in &threads {
            // `Auto` reordering matches the `synth` CLI default: the
            // wide-arbiter family has no good static order and runs for
            // minutes without it (see README).
            let options = SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                symbolic_reorder: ReorderPolicy::Auto,
                bdd_threads: Some(t),
                ..SgSynthesisOptions::default()
            };
            let wall_start = Instant::now();
            let mut sym = match SymbolicSg::build(&stg, &options.symbolic_tuning()) {
                Ok(sym) => sym,
                Err(e) => {
                    eprintln!("{name} (bdd_threads {t}): symbolic reachability failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reach_ms = wall_start.elapsed().as_secs_f64() * 1e3;
            // Extraction timed apart from minimisation: ext-ms is the
            // front end turning the reachable BDD into per-signal
            // implicit sets (the translation tax this column tracks).
            let signals = match check_implementable(&stg) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{name} (bdd_threads {t}): synthesis failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let ext_start = Instant::now();
            let sets = sym.extract_on_off_sets(&signals, options.extraction);
            let extract_ms = ext_start.elapsed().as_secs_f64() * 1e3;
            let result = match synthesize_from_on_off_sets(&stg, sets, &options) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{name} (bdd_threads {t}): synthesis failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

            let stats = sym.reach().stats();
            let equations: Vec<String> = result.gates.iter().map(|g| g.equation(&stg)).collect();
            let fingerprint = (
                equations,
                sym.state_count(),
                (stats.ops.ite, stats.ops.exists, stats.ops.and_exists),
            );
            let matches_reference = match &reference {
                None => {
                    reference = Some(fingerprint);
                    true
                }
                Some(reference) => *reference == fingerprint,
            };

            let row = Row {
                benchmark: name.clone(),
                bdd_threads: t,
                wall_ms,
                reach_ms,
                extract_ms,
                states: sym.state_count(),
                peak_live_nodes: stats.peak_live_nodes,
                peak_pool: stats.peak_pool,
                ops_ite: stats.ops.ite,
                ops_exists: stats.ops.exists,
                ops_and_exists: stats.ops.and_exists,
                literals: result.literal_count(),
                matches_reference,
            };
            println!(
                "{:<20} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>12} {:>10} {:>8} {:>8} {:>5}",
                row.benchmark,
                row.bdd_threads,
                row.wall_ms,
                row.reach_ms,
                row.extract_ms,
                row.states,
                row.peak_live_nodes,
                row.ops_ite,
                row.ops_exists,
                if row.matches_reference { "yes" } else { "NO" }
            );
            rows.push(row);
        }
    }

    let divergent: Vec<&Row> = rows.iter().filter(|r| !r.matches_reference).collect();
    for row in &divergent {
        eprintln!(
            "bench: {} at bdd_threads {} diverged from the single-threaded reference \
             (equations, state count or op counts differ)",
            row.benchmark, row.bdd_threads
        );
    }

    if json {
        let out = crate::workspace_root().join("BENCH_symbolic.json");
        if let Err(e) = std::fs::write(&out, render_json(&rows)) {
            eprintln!("cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", out.display());
    }

    if divergent.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON (the workspace builds offline: no serde). Every value
/// is a number, a bool or an escape-free ASCII string, so plain string
/// assembly is safe.
fn render_json(rows: &[Row]) -> String {
    let host_cpus = std::thread::available_parallelism().map_or(0, |p| p.get());
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"harness\": \"cargo xtask bench --json\",\n");
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(
        "  \"note\": \"wall_ms scales with bdd_threads only on multi-core hosts; \
         ops_* and peak_live_nodes are identical at any thread count and are \
         the columns CI pins\",\n",
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"flow\": \"sg\", \"engine\": \"symbolic\", \
             \"bdd_threads\": {}, \"wall_ms\": {:.1}, \"reach_ms\": {:.1}, \
             \"extract_ms\": {:.1}, \
             \"states\": {}, \"peak_live_nodes\": {}, \"peak_pool\": {}, \
             \"ops_ite\": {}, \"ops_exists\": {}, \"ops_and_exists\": {}, \
             \"literals\": {}, \"matches_reference\": {}}}{}\n",
            r.benchmark,
            r.bdd_threads,
            r.wall_ms,
            r.reach_ms,
            r.extract_ms,
            r.states,
            r.peak_live_nodes,
            r.peak_pool,
            r.ops_ite,
            r.ops_exists,
            r.ops_and_exists,
            r.literals,
            r.matches_reference,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_well_formed() {
        let rows = vec![Row {
            benchmark: "demo".into(),
            bdd_threads: 2,
            wall_ms: 12.5,
            reach_ms: 10.0,
            extract_ms: 1.5,
            states: 64,
            peak_live_nodes: 100,
            peak_pool: 120,
            ops_ite: 7,
            ops_exists: 3,
            ops_and_exists: 0,
            literals: 4,
            matches_reference: true,
        }];
        let json = render_json(&rows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"benchmark\": \"demo\""));
        assert!(json.contains("\"bdd_threads\": 2"));
        assert!(json.contains("\"extract_ms\": 1.5"));
        assert!(json.contains("\"matches_reference\": true"));
        // Balanced braces/brackets — a cheap structural check without a
        // JSON parser in the dependency set.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
