//! # si-synth — speed-independent circuit synthesis from STG-unfolding
//! segments
//!
//! A full reproduction of *"Synthesis of Speed-Independent Circuits from
//! STG-unfolding Segment"* (Semenov, Yakovlev, Pastor, Peña, Cortadella,
//! DAC 1997) as a Rust workspace. This facade crate re-exports the public
//! APIs of the member crates:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`bdd`] | Reduced ordered BDD engine: ITE, quantification, relational product |
//! | [`petri`] | 1-safe Petri net kernel, markings, explicit & symbolic reachability |
//! | [`stg`] | Signal Transition Graphs, `.g` parser/writer, generators, benchmark suite |
//! | [`cubes`] | Ternary cube/cover algebra, Espresso-style minimiser |
//! | [`stategraph`] | State graphs (explicit & symbolic engines), CSC/persistency checks, SG-based baseline synthesis |
//! | [`unfolding`] | STG-unfolding segments: occurrence nets, cutoffs, cuts, concurrency |
//! | [`synthesis`] | The paper's contribution: slices, exact & approximate covers, refinement, architectures |
//!
//! ## Quickstart
//!
//! ```
//! use si_synth::stg::suite::paper_fig1;
//! use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = paper_fig1();
//! let netlist = synthesize_from_unfolding(&spec, &SynthesisOptions::default())?;
//! for gate in &netlist.gates {
//!     println!("{}", gate.equation(&spec)); // b = a + c
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! regenerated Table 1 / Figure 6 results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use si_bdd as bdd;
pub use si_cubes as cubes;
pub use si_petri as petri;
pub use si_stategraph as stategraph;
pub use si_stg as stg;
pub use si_synthesis as synthesis;
pub use si_unfolding as unfolding;
